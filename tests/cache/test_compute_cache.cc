/** @file Tests for the lazy compute-cache container. */

#include <gtest/gtest.h>

#include "cache/compute_cache.hh"

namespace
{

using nc::cache::ArrayCoord;
using nc::cache::ComputeCache;
using nc::cache::Geometry;

TEST(ComputeCache, FlatIndexRoundTrip)
{
    ComputeCache cc;
    const Geometry &g = cc.geometry();
    for (uint64_t flat :
         {uint64_t(0), uint64_t(1), uint64_t(319), uint64_t(320),
          uint64_t(g.totalArrays() - 1)}) {
        ArrayCoord c = cc.coordOf(flat);
        EXPECT_EQ(cc.flatIndex(c), flat);
    }
}

TEST(ComputeCache, CoordDecomposition)
{
    ComputeCache cc;
    ArrayCoord c = cc.coordOf(320); // first array of slice 1
    EXPECT_EQ(c.slice, 1u);
    EXPECT_EQ(c.way, 0u);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.array, 0u);
}

TEST(ComputeCache, LazyMaterialization)
{
    ComputeCache cc;
    EXPECT_EQ(cc.materializedCount(), 0u);
    ArrayCoord c{0, 1, 2, 3};
    EXPECT_FALSE(cc.materialized(c));
    auto &arr = cc.array(c);
    EXPECT_TRUE(cc.materialized(c));
    EXPECT_EQ(cc.materializedCount(), 1u);
    // Same coordinate returns the same array.
    arr.poke(0, 0, true);
    EXPECT_TRUE(cc.array(c).peek(0, 0));
    EXPECT_EQ(cc.materializedCount(), 1u);
}

TEST(ComputeCache, LockstepIsMaxOverArrays)
{
    ComputeCache cc;
    auto &a0 = cc.array({0, 0, 0, 0});
    auto &a1 = cc.array({1, 0, 0, 0});
    a0.opZero(0);
    a0.opZero(1);
    a1.opZero(0);
    EXPECT_EQ(cc.lockstepCycles(), 2u);
    EXPECT_EQ(cc.totalComputeCycles(), 3u);
    cc.resetCycles();
    EXPECT_EQ(cc.lockstepCycles(), 0u);
}

TEST(ComputeCache, AccessCyclesAggregated)
{
    ComputeCache cc;
    auto &a = cc.array({0, 0, 0, 0});
    a.readRow(0);
    a.writeRow(0, nc::sram::BitRow(cc.geometry().arrayCols));
    EXPECT_EQ(cc.totalAccessCycles(), 2u);
}

TEST(ComputeCache, RingStopsFollowGeometry)
{
    ComputeCache cc(Geometry::scaled60MB());
    EXPECT_EQ(cc.ring().stops, 24u);
}

TEST(ComputeCacheDeath, BadCoord)
{
    ComputeCache cc;
    EXPECT_DEATH(cc.flatIndex(ArrayCoord{14, 0, 0, 0}), "coordinate");
    EXPECT_DEATH(cc.coordOf(uint64_t(4480)), "out of range");
}

} // namespace
