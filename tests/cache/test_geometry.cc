/** @file Geometry invariants from the paper (§II-C, §III-A). */

#include <gtest/gtest.h>

#include "cache/geometry.hh"
#include "common/units.hh"

namespace
{

using nc::cache::Geometry;

TEST(Geometry, XeonE5DerivedCounts)
{
    Geometry g = Geometry::xeonE5_35MB();
    // "The slice has 80 32KB banks organized into 20 ways."
    EXPECT_EQ(g.waysPerSlice * g.banksPerWay, 80u);
    // "A 2.5 MB LLC slice has 320 8KB arrays."
    EXPECT_EQ(g.arraysPerSlice(), 320u);
    // "Haswell server processor's 35 MB LLC can accommodate 4480
    // such 8KB arrays."
    EXPECT_EQ(g.totalArrays(), 4480u);
    // "up to 1,146,880 elements can be processed in parallel."
    EXPECT_EQ(g.aluSlots(), 1146880u);
}

TEST(Geometry, CapacityMatches35MB)
{
    Geometry g = Geometry::xeonE5_35MB();
    EXPECT_EQ(g.arrayBytes(), 8u * 1024u);
    EXPECT_EQ(g.sliceBytes(), uint64_t(2560) * 1024); // 2.5 MB
    EXPECT_EQ(g.capacityBytes(), uint64_t(35) * 1024 * 1024);
}

TEST(Geometry, ReservedWays)
{
    Geometry g;
    // Way-20 serves the CPU, way-19 buffers I/O (paper §IV).
    EXPECT_EQ(g.computeWays(), 18u);
    EXPECT_EQ(g.computeArraysPerSlice(), 288u);
    EXPECT_EQ(g.computeArrays(), 4032u);
    EXPECT_EQ(g.computeAluSlots(), uint64_t(4032) * 256);
    // The reserved I/O way is 128 KB per slice.
    EXPECT_EQ(g.reservedWayBytes(), uint64_t(128) * 1024);
}

TEST(Geometry, TableIVPresets)
{
    Geometry g45 = Geometry::scaled45MB();
    Geometry g60 = Geometry::scaled60MB();
    EXPECT_EQ(g45.capacityBytes(), uint64_t(45) * 1024 * 1024);
    EXPECT_EQ(g60.capacityBytes(), uint64_t(60) * 1024 * 1024);
    EXPECT_EQ(g45.slices, 18u);
    EXPECT_EQ(g60.slices, 24u);
    // Compute resources scale with slices.
    EXPECT_GT(g45.computeArrays(), Geometry().computeArrays());
    EXPECT_GT(g60.computeArrays(), g45.computeArrays());
}

TEST(Geometry, ArrayShape)
{
    Geometry g;
    // "the 8KB SRAM array is composed of 256 word lines and 256 bit
    // lines."
    EXPECT_EQ(g.arrayRows, 256u);
    EXPECT_EQ(g.arrayCols, 256u);
}

} // namespace
