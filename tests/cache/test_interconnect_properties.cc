/** @file Property tests over interconnect and geometry scaling. */

#include <gtest/gtest.h>

#include "cache/geometry.hh"
#include "cache/interconnect.hh"

namespace
{

using nc::cache::Geometry;
using nc::cache::IntraSliceBus;
using nc::cache::Ring;

class FillSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FillSweep, FillCyclesMonotoneInRows)
{
    IntraSliceBus bus;
    unsigned rows = GetParam();
    EXPECT_LE(bus.fillWayCycles(rows, 256),
              bus.fillWayCycles(rows + 1, 256));
    // The latch never makes things slower.
    EXPECT_LE(bus.fillWayCycles(rows, 256, true),
              bus.fillWayCycles(rows, 256, false));
    // Linear in row bits.
    EXPECT_EQ(bus.fillWayCycles(rows, 256),
              rows * bus.fillWayCycles(1, 256));
}

INSTANTIATE_TEST_SUITE_P(Rows, FillSweep,
                         ::testing::Values(1, 8, 24, 72, 128, 255));

TEST(BusProperties, StreamTimeLinear)
{
    IntraSliceBus bus;
    double one = bus.streamPs(3200);
    double two = bus.streamPs(6400);
    EXPECT_DOUBLE_EQ(two, 2 * one);
}

TEST(RingProperties, BroadcastCheaperThanSequentialUnicasts)
{
    Ring ring;
    uint64_t bytes = 4096;
    double bcast = ring.broadcastPs(bytes);
    double unicasts = 0;
    for (unsigned hop = 1; hop <= ring.stops / 2; ++hop)
        unicasts += ring.transferPs(bytes, hop) * 2; // both directions
    EXPECT_LT(bcast, unicasts);
}

class GeometrySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GeometrySweep, DerivedCountsScaleLinearlyWithSlices)
{
    unsigned slices = GetParam();
    Geometry g;
    g.slices = slices;
    EXPECT_EQ(g.totalArrays(), slices * 320u);
    EXPECT_EQ(g.aluSlots(), uint64_t(slices) * 320 * 256);
    EXPECT_EQ(g.capacityBytes(), uint64_t(slices) * g.sliceBytes());
    EXPECT_EQ(g.computeArrays(), slices * 288u);
    // Reserved ways never exceed the way count.
    EXPECT_LT(g.reservedWays, g.waysPerSlice);
}

INSTANTIATE_TEST_SUITE_P(Slices, GeometrySweep,
                         ::testing::Values(1, 8, 14, 18, 24, 32));

TEST(GeometryProperties, ArrayCountsFactorExactly)
{
    Geometry g;
    EXPECT_EQ(g.arraysPerBank() * g.banksPerWay, g.arraysPerWay());
    EXPECT_EQ(g.arraysPerWay() * g.waysPerSlice, g.arraysPerSlice());
    EXPECT_EQ(uint64_t(g.arraysPerSlice()) * g.arrayBytes(),
              g.sliceBytes());
}

} // namespace
