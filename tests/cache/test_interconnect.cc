/** @file Tests for the intra-slice bus and ring models. */

#include <gtest/gtest.h>

#include "cache/interconnect.hh"

namespace
{

using nc::cache::IntraSliceBus;
using nc::cache::Ring;

TEST(Bus, QuadrantCycles)
{
    IntraSliceBus bus;
    EXPECT_EQ(bus.quadrantCycles(64), 1u);
    EXPECT_EQ(bus.quadrantCycles(65), 2u);
    EXPECT_EQ(bus.quadrantCycles(0), 0u);
}

TEST(Bus, FillWayDistinctData)
{
    IntraSliceBus bus;
    // One 256-bit word line into each array of a way: an array pair
    // absorbs 2 x 256 bits at 32 b/cycle = 16 cycles; banks parallel.
    EXPECT_EQ(bus.fillWayCycles(1, 256), 16u);
    EXPECT_EQ(bus.fillWayCycles(72, 256), 72u * 16u);
}

TEST(Bus, BankLatchHalvesReplicatedFills)
{
    IntraSliceBus bus;
    EXPECT_EQ(bus.fillWayCycles(1, 256, true), 8u);
    bus.bankLatch = false;
    EXPECT_EQ(bus.fillWayCycles(1, 256, true), 16u);
}

TEST(Bus, StreamTime)
{
    IntraSliceBus bus;
    // 32 bytes = one 256-bit bus beat = 0.4 ns at 2.5 GHz.
    EXPECT_DOUBLE_EQ(bus.streamPs(32), 400.0);
    EXPECT_DOUBLE_EQ(bus.streamPs(64), 800.0);
}

TEST(Bus, FillPsConsistentWithCycles)
{
    IntraSliceBus bus;
    double ps = bus.fillWayPs(10, 256);
    EXPECT_DOUBLE_EQ(ps, 10 * 16 * 400.0);
}

TEST(Ring, BroadcastSerializationDominates)
{
    Ring ring;
    // 1 KiB broadcast: 32 flits of 32 B + half-ring tail.
    double ps = ring.broadcastPs(1024);
    EXPECT_GT(ps, 32 * 400.0);
    EXPECT_LT(ps, 32 * 400.0 + 8 * 400.0);
}

TEST(Ring, TransferScalesWithHops)
{
    Ring ring;
    double near = ring.transferPs(256, 1);
    double far = ring.transferPs(256, 7);
    EXPECT_LT(near, far);
    EXPECT_DOUBLE_EQ(far - near, 6 * 400.0);
}

TEST(Ring, PerSliceBandwidth)
{
    Ring ring;
    // 32 B / cycle at 2.5 GHz = 80 GB/s.
    EXPECT_DOUBLE_EQ(ring.perSliceBandwidthBytesPerSec(), 80e9);
}

TEST(RingDeath, HopsBeyondStops)
{
    Ring ring;
    EXPECT_DEATH(ring.transferPs(64, 15), "hops");
}

} // namespace
