/**
 * @file
 * Detection and repair plumbing: HealthMap bookkeeping, the BIST
 * march test, and the ComputeCache logical→physical remap (compile
 * scan, surgical substitution, compaction).
 */

#include <gtest/gtest.h>

#include "cache/compute_cache.hh"
#include "cache/health.hh"

namespace
{

using namespace nc;
using namespace nc::cache;

/** 8 arrays of 16x32 — every remap shape fits in one glance. */
Geometry
tinyGeom()
{
    Geometry g;
    g.name = "tiny";
    g.slices = 1;
    g.waysPerSlice = 2;
    g.banksPerWay = 2;
    g.subarraysPerBank = 1;
    g.arraysPerSubarray = 2;
    g.arrayRows = 16;
    g.arrayCols = 32;
    return g;
}

TEST(HealthMap, RetireIsIdempotentAndKeepsTheFirstReason)
{
    HealthMap h(8);
    EXPECT_TRUE(h.healthy(3));
    EXPECT_EQ(h.retiredCount(), 0u);
    EXPECT_EQ(h.summary(), "none");

    h.retire(3, "first diagnosis");
    h.retire(3, "second opinion");
    EXPECT_FALSE(h.healthy(3));
    EXPECT_EQ(h.retiredCount(), 1u);
    ASSERT_NE(h.reason(3), nullptr);
    EXPECT_EQ(*h.reason(3), "first diagnosis");
    EXPECT_EQ(h.reason(2), nullptr);

    h.retire(1, "also dead");
    auto dead = h.retired();
    ASSERT_EQ(dead.size(), 2u);
    EXPECT_EQ(dead[0], 1u);
    EXPECT_EQ(dead[1], 3u);
    EXPECT_NE(h.summary().find("array 1"), std::string::npos);
    EXPECT_NE(h.summary().find("array 3"), std::string::npos);
    EXPECT_NE(h.summary().find("first diagnosis"),
              std::string::npos);

    // Out-of-range indices are simply not healthy.
    EXPECT_FALSE(h.healthy(8));
}

TEST(Bist, MarchPassesIdealCellsAndCatchesStuckAndDead)
{
    sram::Array clean(16, 32);
    EXPECT_TRUE(bistMarch(clean));

    sram::faults::Config cfg;
    sram::faults::Registry reg(cfg, 2, 16, 32);
    reg.addStuck(0, 3, 5, true);
    reg.killArray(1);

    sram::Array stuck(16, 32);
    stuck.setFaults(reg.recordFor(0));
    EXPECT_FALSE(bistMarch(stuck)); // checkerboard hits both values

    sram::Array dead(16, 32);
    dead.setFaults(reg.recordFor(1));
    EXPECT_FALSE(bistMarch(dead));
}

TEST(Bist, ScanRetiresCasualtiesAndCompactsTheRemap)
{
    ComputeCache cc(tinyGeom());
    EXPECT_EQ(cc.usableArrays(), 8u); // unconfigured: identity
    EXPECT_EQ(cc.physicalOf(5), 5u);

    sram::faults::Config cfg;
    cfg.killArrays = {0, 5};
    cc.configureFaults(cfg);
    EXPECT_EQ(cc.bistScanAndRemap(), 2u);
    EXPECT_EQ(cc.usableArrays(), 6u);

    // Survivors compact ascending: 1,2,3,4,6,7.
    EXPECT_EQ(cc.physicalOf(0), 1u);
    EXPECT_EQ(cc.physicalOf(3), 4u);
    EXPECT_EQ(cc.physicalOf(4), 6u);
    EXPECT_EQ(cc.physicalOf(5), 7u);

    EXPECT_FALSE(cc.health()->healthy(0));
    EXPECT_FALSE(cc.health()->healthy(5));
    EXPECT_TRUE(cc.health()->healthy(1));
    EXPECT_NE(cc.health()->summary().find("bist"),
              std::string::npos);
}

TEST(Health, RetireAndSubstituteRebindsAndWipesTheSpare)
{
    ComputeCache cc(tinyGeom());
    sram::faults::Config cfg;
    cfg.killArrays = {7}; // arm faults; kill only the tail
    cc.configureFaults(cfg);
    cc.bistScanAndRemap(); // survivors 0..6

    cc.array(cc.coordOf(2)).poke(0, 0, true); // the future casualty
    cc.array(cc.coordOf(6)).poke(1, 1, true); // the future spare

    uint64_t phys = cc.retireAndSubstitute(2, "test: synthetic");
    EXPECT_EQ(phys, 6u);
    EXPECT_EQ(cc.usableArrays(), 6u);
    EXPECT_EQ(cc.physicalOf(2), 6u); // spare behind the same logical

    // The substitute starts clean for its new life.
    EXPECT_FALSE(cc.array(cc.coordOf(2)).peek(1, 1));
    EXPECT_FALSE(cc.array(cc.coordOf(2)).peek(0, 0));

    // The reason lands on the casualty's physical index.
    ASSERT_NE(cc.health()->reason(2), nullptr);
    EXPECT_EQ(*cc.health()->reason(2), "test: synthetic");
}

TEST(Health, RetireCompactReshufflesTheWholeLogicalSpace)
{
    ComputeCache cc(tinyGeom());
    sram::faults::Config cfg;
    cfg.killArrays = {1};
    cc.configureFaults(cfg);
    cc.bistScanAndRemap(); // survivors 0,2,3,4,5,6,7
    EXPECT_EQ(cc.physicalOf(1), 2u);

    cc.array(cc.coordOf(3)).poke(0, 0, true); // physical 4

    cc.retireCompact(1, "test: compact"); // retires physical 2
    EXPECT_EQ(cc.usableArrays(), 6u);
    // Survivors ascend again: 0,3,4,5,6,7 — everything above the
    // casualty shifted, which is why callers must re-place the plan.
    EXPECT_EQ(cc.physicalOf(0), 0u);
    EXPECT_EQ(cc.physicalOf(1), 3u);
    EXPECT_EQ(cc.physicalOf(2), 4u);

    // Materialized survivors were wiped for re-placement.
    EXPECT_FALSE(cc.array(cc.coordOf(2)).peek(0, 0));
    ASSERT_NE(cc.health()->reason(2), nullptr);
    EXPECT_EQ(*cc.health()->reason(2), "test: compact");
}

} // namespace
