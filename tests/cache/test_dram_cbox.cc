/** @file Tests for the DRAM channel and C-BOX models. */

#include <gtest/gtest.h>

#include "cache/cbox.hh"
#include "cache/dram.hh"

namespace
{

using nc::cache::CBox;
using nc::cache::DramModel;

TEST(Dram, TransferTimeLinearPlusLatency)
{
    DramModel d;
    EXPECT_DOUBLE_EQ(d.transferPs(0), 0.0);
    double one = d.transferPs(1u << 20);
    double two = d.transferPs(2u << 20);
    // Doubling bytes roughly doubles time minus the fixed latency.
    EXPECT_NEAR(two - one, one - d.streamLatencyPs, 1.0);
}

TEST(Dram, CalibratedBandwidthLoadsInceptionFiltersIn2ms)
{
    // ~22.7 MiB of weights at the calibrated effective bandwidth is
    // about 2.1-2.2 ms: the 46% filter-load share of Figure 14.
    DramModel d;
    double ms = d.transferPs(uint64_t(22.7 * (1 << 20))) * 1e-9;
    EXPECT_GT(ms, 1.9);
    EXPECT_LT(ms, 2.4);
}

TEST(Dram, EnergyPerByte)
{
    DramModel d;
    EXPECT_DOUBLE_EQ(d.transferPj(100), 100 * d.energyPjPerByte);
}

TEST(CBox, TransposeThroughputScalesWithTmus)
{
    CBox one;
    one.tmus = 1;
    CBox two;
    two.tmus = 2;
    uint64_t bytes = 1 << 16;
    EXPECT_LT(two.transposePs(bytes), one.transposePs(bytes));
}

TEST(CBox, FsmAreaMatchesPaper)
{
    // "The area of one FSM is estimated to be 204 um^2, across 14
    // slices which sums to 0.23 mm^2."
    CBox cbox;
    EXPECT_NEAR(cbox.fsmAreaMm2(14), 0.23, 0.01);
}

TEST(CBox, TransposeOfZeroBytesIsFree)
{
    CBox cbox;
    EXPECT_DOUBLE_EQ(cbox.transposePs(0), 0.0);
}

} // namespace
