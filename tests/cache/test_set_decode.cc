/** @file Tests for address decoding (§V micro-benchmark substrate). */

#include <map>

#include <gtest/gtest.h>

#include "cache/set_decode.hh"

namespace
{

using nc::cache::Geometry;
using nc::cache::SetDecoder;

TEST(SetDecoder, SetsPerSliceMatchesXeon)
{
    // 2.5 MB slice / (20 ways x 64 B lines) = 2048 sets.
    SetDecoder dec;
    EXPECT_EQ(dec.setsPerSlice(), 2048u);
}

TEST(SetDecoder, FieldDecomposition)
{
    SetDecoder dec;
    uint64_t paddr = (uint64_t(5) << 6) | 17;
    EXPECT_EQ(dec.offsetOf(paddr), 17u);
    EXPECT_EQ(dec.setOf(paddr), 5u);
}

TEST(SetDecoder, SliceHashIsDeterministic)
{
    SetDecoder dec;
    for (uint64_t a : {0ull, 64ull, 4096ull, 1ull << 30}) {
        EXPECT_EQ(dec.sliceOf(a), dec.sliceOf(a));
        EXPECT_LT(dec.sliceOf(a), 14u);
    }
}

TEST(SetDecoder, StreamSpreadsAcrossSlices)
{
    // A long sequential stream must not starve any slice (the real
    // hash's uniformity property, which the bandwidth model assumes).
    SetDecoder dec;
    std::map<unsigned, unsigned> hist;
    const unsigned lines = 14 * 2048;
    for (unsigned i = 0; i < lines; ++i)
        ++hist[dec.sliceOf(uint64_t(i) * 64)];
    for (unsigned s = 0; s < 14; ++s) {
        EXPECT_GT(hist[s], lines / 14 / 2) << "slice " << s;
        EXPECT_LT(hist[s], lines / 14 * 2) << "slice " << s;
    }
}

TEST(SetDecoder, ComposeAddressRoundTrips)
{
    SetDecoder dec;
    for (unsigned slice : {0u, 3u, 7u, 13u}) {
        for (unsigned set : {0u, 1u, 1024u, 2047u}) {
            uint64_t paddr = dec.composeAddress(slice, set);
            EXPECT_EQ(dec.sliceOf(paddr), slice);
            EXPECT_EQ(dec.setOf(paddr), set);
            EXPECT_EQ(dec.offsetOf(paddr), 0u);
        }
    }
}

TEST(SetDecoder, ScaledGeometries)
{
    SetDecoder d60{Geometry::scaled60MB()};
    EXPECT_EQ(d60.setsPerSlice(), 2048u);
    uint64_t paddr = d60.composeAddress(23, 100);
    EXPECT_EQ(d60.sliceOf(paddr), 23u);
}

TEST(SetDecoderDeath, OutOfRange)
{
    SetDecoder dec;
    EXPECT_DEATH(dec.composeAddress(14, 0), "slice");
    EXPECT_DEATH(dec.composeAddress(0, 2048), "set");
}

} // namespace
