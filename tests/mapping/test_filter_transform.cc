/** @file Tests for filter packing and splitting (paper §IV-A). */

#include <gtest/gtest.h>

#include "dnn/layers.hh"
#include "mapping/filter_transform.hh"

namespace
{

using namespace nc::mapping;
using nc::dnn::conv;

TEST(FilterTransform, Plain3x3Unchanged)
{
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.rs, 9u);
    EXPECT_EQ(ft.splitFactor, 1u);
    EXPECT_EQ(ft.packFactor, 1u);
    EXPECT_EQ(ft.effRS, 9u);
    EXPECT_EQ(ft.effChannels, 32u);
    EXPECT_EQ(ft.paddedChannels, 32u);
}

TEST(FilterTransform, FiveByFiveSplits)
{
    // "The filters are split across bitlines when their size exceeds
    // 9 bytes": 5x5 = 25 -> 3 bit lines of <= 9 bytes.
    auto op = conv("c", 35, 35, 48, 5, 5, 64).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.splitFactor, 3u);
    EXPECT_EQ(ft.effRS, 9u);
    EXPECT_EQ(ft.effChannels, 144u);
    EXPECT_EQ(ft.paddedChannels, 256u);
}

TEST(FilterTransform, PointwisePacks16)
{
    // "Instead of putting a single byte of the filter, we can instead
    // put 16 bytes of the filter."
    auto op = conv("c", 73, 73, 64, 1, 1, 80).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.packFactor, 16u);
    EXPECT_EQ(ft.effRS, 16u);
    EXPECT_EQ(ft.effChannels, 4u);
    EXPECT_EQ(ft.paddedChannels, 4u);
}

TEST(FilterTransform, PackingGuaranteesSenseAmpFit)
{
    // "by packing all channels in the network it is guaranteed to fit
    // within 2 arrays that share sense-amps": the widest pointwise
    // layer (2048 channels) packs down to 128 lanes.
    auto op = conv("c", 8, 8, 2048, 1, 1, 320).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.effChannels, 128u);
    EXPECT_LE(ft.paddedChannels, 2u * 256u);
}

TEST(FilterTransform, SmallChannelPointwiseLimitsPack)
{
    auto op = conv("c", 35, 35, 3, 1, 1, 8).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.packFactor, 3u);
    EXPECT_EQ(ft.effChannels, 1u);
}

TEST(FilterTransform, SevenTapRowsNeitherPackNorSplit)
{
    auto op = conv("c", 17, 17, 768, 1, 7, 192).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.effRS, 7u);
    EXPECT_EQ(ft.effChannels, 768u);
    EXPECT_EQ(ft.paddedChannels, 1024u);
}

TEST(FilterTransform, ChannelsPadToPow2)
{
    // "This channel number is then rounded up to the nearest power of
    // 2, by padding the extra channels with zero."
    auto op = conv("c", 35, 35, 48, 3, 3, 64).conv;
    FilterTransform ft = transformFilter(op);
    EXPECT_EQ(ft.effChannels, 48u);
    EXPECT_EQ(ft.paddedChannels, 64u);
}

TEST(FilterTransform, RowBudgets)
{
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    FilterTransform ft = transformFilter(op);
    // RxSx8 word lines each for filters and inputs (Figure 10).
    EXPECT_EQ(ft.filterRows(8), 72u);
    EXPECT_EQ(ft.inputRows(8), 72u);

    auto packed = conv("c", 8, 8, 2048, 1, 1, 320).conv;
    FilterTransform pft = transformFilter(packed);
    // "Since 1x1 has no input reuse, we only need one input byte at a
    // time."
    EXPECT_EQ(pft.filterRows(8), 128u);
    EXPECT_EQ(pft.inputRows(8), 8u);
}

TEST(FilterTransform, CustomLimits)
{
    TransformLimits lim;
    lim.maxFilterBytes = 25;
    auto op = conv("c", 35, 35, 48, 5, 5, 64).conv;
    FilterTransform ft = transformFilter(op, lim);
    EXPECT_EQ(ft.splitFactor, 1u);
    EXPECT_EQ(ft.effRS, 25u);

    lim.packTarget = 1; // packing disabled
    auto pw = conv("c", 8, 8, 2048, 1, 1, 320).conv;
    FilterTransform pft = transformFilter(pw, lim);
    EXPECT_EQ(pft.packFactor, 1u);
    EXPECT_EQ(pft.effChannels, 2048u);
}

} // namespace
