/** @file Tests for transposed weight placement (§IV-C). */

#include <set>

#include <gtest/gtest.h>

#include "mapping/weight_layout.hh"

namespace
{

using namespace nc::mapping;
using nc::cache::Geometry;
using nc::dnn::conv;

WeightLayout
layoutFor(const nc::dnn::ConvOp &op, const Geometry &g)
{
    return WeightLayout(op, planConv(op, g), g);
}

TEST(WeightLayout, PlainConvChannelsWalkLanes)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    WeightLayout wl = layoutFor(op, g);

    // Channel c of filter byte k, batch 0: lane c, row 8k.
    for (unsigned c : {0u, 7u, 31u})
        for (unsigned k : {0u, 4u, 8u}) {
            WeightHome h = wl.homeOf(0, c, k);
            EXPECT_EQ(h.lane, c);
            EXPECT_EQ(h.row, 8 * k);
            EXPECT_EQ(h.coord.way, 0u);
        }
    // Batch 8 (convsPerArray = 8) moves to the next array.
    WeightHome h8 = wl.homeOf(8, 0, 0);
    WeightHome h0 = wl.homeOf(0, 0, 0);
    EXPECT_NE(h8.coord, h0.coord);
    // Batch 1 shares array 0 on the next lane group.
    WeightHome h1 = wl.homeOf(1, 0, 0);
    EXPECT_EQ(h1.coord, h0.coord);
    EXPECT_EQ(h1.lane, 32u);
}

TEST(WeightLayout, SplitFiltersSpreadAcrossLanes)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 35, 35, 48, 5, 5, 64).conv; // split x3
    WeightLayout wl = layoutFor(op, g);

    // Filter byte 0 and byte 9 of the same channel live on adjacent
    // lanes (split boundary at effRS = 9).
    WeightHome a = wl.homeOf(0, 0, 0);
    WeightHome b = wl.homeOf(0, 0, 9);
    EXPECT_EQ(a.lane + 1, b.lane);
    EXPECT_EQ(b.row, 0u);
    // Byte 8 stays on the first lane, top of the band.
    WeightHome c8 = wl.homeOf(0, 0, 8);
    EXPECT_EQ(c8.lane, a.lane);
    EXPECT_EQ(c8.row, 64u);
}

TEST(WeightLayout, PackedPointwiseStacksChannels)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 8, 8, 2048, 1, 1, 320).conv; // pack x16
    WeightLayout wl = layoutFor(op, g);

    // Channels 0..15 share lane 0, stacked 8 rows apart.
    for (unsigned c : {0u, 1u, 15u}) {
        WeightHome h = wl.homeOf(0, c, 0);
        EXPECT_EQ(h.lane, 0u);
        EXPECT_EQ(h.row, 8 * c);
    }
    EXPECT_EQ(wl.homeOf(0, 16, 0).lane, 1u);
}

TEST(WeightLayout, HomesAreUniquePerArrayRowLane)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 16, 16, 8, 3, 3, 4).conv;
    WeightLayout wl = layoutFor(op, g);

    std::set<std::tuple<unsigned, unsigned, unsigned, unsigned,
                        unsigned, unsigned>>
        seen;
    for (unsigned m = 0; m < 4; ++m)
        for (unsigned c = 0; c < 8; ++c)
            for (unsigned k = 0; k < 9; ++k) {
                WeightHome h = wl.homeOf(m, c, k);
                auto key = std::tuple(h.coord.slice, h.coord.way,
                                      h.coord.bank, h.coord.array,
                                      h.row, h.lane);
                EXPECT_TRUE(seen.insert(key).second)
                    << m << "," << c << "," << k;
            }
    EXPECT_EQ(seen.size(), size_t(4) * 8 * 9);
}

TEST(WeightLayout, HomesRespectTheFigure10Band)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 35, 35, 48, 5, 5, 64).conv;
    auto plan = planConv(op, g);
    WeightLayout wl(op, plan, g);
    for (unsigned m : {0u, 63u})
        for (unsigned c : {0u, 47u})
            for (unsigned k : {0u, 24u}) {
                WeightHome h = wl.homeOf(m, c, k);
                EXPECT_LT(h.row, plan.filterRows);
                EXPECT_LT(h.lane, g.arrayCols);
                EXPECT_LT(h.coord.way, g.computeWays());
            }
}

TEST(WeightLayout, StreamingOrderIsMonotone)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 16, 16, 8, 3, 3, 4).conv;
    WeightLayout wl = layoutFor(op, g);
    auto order = wl.streamingOrder();
    ASSERT_EQ(order.size(), size_t(4) * 8 * 9);
    for (size_t i = 1; i < order.size(); ++i) {
        const auto &p = order[i - 1];
        const auto &q = order[i];
        auto key = [&](const WeightHome &h) {
            return std::tuple(h.coord.way, h.coord.bank,
                              h.coord.array, h.row, h.lane);
        };
        EXPECT_LE(key(p), key(q)) << "position " << i;
    }
}

TEST(WeightLayout, MultiArrayConvSpansArrays)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 17, 17, 768, 7, 1, 192).conv; // 1024 lanes
    WeightLayout wl = layoutFor(op, g);
    WeightHome first = wl.homeOf(0, 0, 0);
    WeightHome far = wl.homeOf(0, 500, 0);
    EXPECT_NE(first.coord, far.coord);
    EXPECT_LT(far.lane, g.arrayCols);
}

TEST(WeightLayoutDeath, OutOfRangeElement)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 16, 16, 8, 3, 3, 4).conv;
    WeightLayout wl = layoutFor(op, g);
    EXPECT_DEATH(wl.homeOf(4, 0, 0), "out of range");
    EXPECT_DEATH(wl.homeOf(0, 8, 0), "out of range");
    EXPECT_DEATH(wl.homeOf(0, 0, 9), "out of range");
}

} // namespace
