/** @file Tests for conv/pool mapping plans, incl. the §VI-A anchor. */

#include <gtest/gtest.h>

#include "dnn/inception_v3.hh"
#include "mapping/plan.hh"

namespace
{

using namespace nc::mapping;
using nc::cache::Geometry;
using nc::dnn::conv;
using nc::dnn::maxPool;

TEST(ConvPlan, PaperConv2bAnchor)
{
    // §VI-A: "This layer computes ~1.4 million convolutions, out of
    // which Neural Cache executes ~32 thousand convolutions in
    // parallel and 43 in series ... 99.7% utilization".
    auto op = conv("Conv2D_2b_3x3", 147, 147, 32, 3, 3, 64).conv;
    ConvPlan plan = planConv(op, Geometry::xeonE5_35MB());

    EXPECT_EQ(op.convCount(), 1382976u);
    EXPECT_EQ(plan.lanesPerConv, 32u);
    EXPECT_EQ(plan.convsPerArray, 8u);
    EXPECT_EQ(plan.parallelConvs, 32256u); // ~32 thousand
    EXPECT_EQ(plan.serialPasses, 43u);
    EXPECT_NEAR(plan.utilization, 0.997, 0.001);
}

TEST(ConvPlan, Figure9ExampleTwoMsPerArray)
{
    // Figure 9's example layer: 3x3, C=128, M=32 -> an array packs two
    // complete filters (M5 and M6 share an array).
    auto op = conv("fig9", 32, 32, 128, 3, 3, 32).conv;
    ConvPlan plan = planConv(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.lanesPerConv, 128u);
    EXPECT_EQ(plan.convsPerArray, 2u);
    EXPECT_TRUE(plan.fitsSenseAmpPair);
}

TEST(ConvPlan, WideChannelsSpanArrays)
{
    auto op = conv("c", 17, 17, 768, 7, 1, 192).conv;
    ConvPlan plan = planConv(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.lanesPerConv, 1024u);
    EXPECT_EQ(plan.arraysPerConv, 4u);
    EXPECT_EQ(plan.convsPerArray, 0u);
    EXPECT_FALSE(plan.fitsSenseAmpPair);
    EXPECT_EQ(plan.parallelConvs, 4032u / 4u);
}

TEST(ConvPlan, RowLayoutFitsFigure10Budget)
{
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    ConvPlan plan = planConv(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.filterRows, 72u);
    EXPECT_EQ(plan.inputRows, 72u);
    RowBudget budget;
    EXPECT_EQ(budget.overhead(), 16u + 24u + 32u + 1u);
    EXPECT_EQ(plan.freeRows, 256u - 72 - 72 - budget.overhead());
}

TEST(ConvPlan, InputReuseThreeByThreeStrideOne)
{
    // "in a 3x3 convolution with a stride of 1, 6 of the 9 bytes are
    // reused across each set of input loads."
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    ConvPlan plan = planConv(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.newInputBytesPerWindow, 3u);
}

TEST(ConvPlan, NoReuseForStride2OrPacked)
{
    auto s2 = conv("c", 35, 35, 288, 3, 3, 384, 2, false).conv;
    ConvPlan p2 = planConv(s2, Geometry::xeonE5_35MB());
    EXPECT_EQ(p2.newInputBytesPerWindow, 6u); // only r x (s-u) reused
    auto s3 = conv("c", 35, 35, 288, 3, 3, 384, 3, false).conv;
    ConvPlan p3 = planConv(s3, Geometry::xeonE5_35MB());
    EXPECT_EQ(p3.newInputBytesPerWindow, 9u);
    auto packed = conv("c", 8, 8, 2048, 1, 1, 320).conv;
    ConvPlan pp = planConv(packed, Geometry::xeonE5_35MB());
    EXPECT_EQ(pp.newInputBytesPerWindow, pp.ft.effRS);
}

TEST(ConvPlan, UtilizationNeverExceedsOne)
{
    auto net = nc::dnn::inceptionV3();
    Geometry g = Geometry::xeonE5_35MB();
    for (const auto &st : net.stages)
        for (const auto &b : st.branches)
            for (const auto &op : b.ops)
                if (op.isConv()) {
                    ConvPlan plan = planConv(op.conv, g);
                    EXPECT_LE(plan.utilization, 1.0) << op.name();
                    EXPECT_GT(plan.utilization, 0.0) << op.name();
                    EXPECT_GE(plan.serialPasses, 1u) << op.name();
                    EXPECT_EQ(plan.serialPasses * plan.parallelConvs >=
                                  op.conv.convCount(),
                              true)
                        << op.name();
                }
}

TEST(ConvPlan, EveryInceptionLayerFitsTheRowBudget)
{
    // planConv() fatals if the Figure 10 layout overflows 256 word
    // lines; walking the whole model proves the mapping is feasible.
    auto net = nc::dnn::inceptionV3();
    Geometry g = Geometry::xeonE5_35MB();
    unsigned planned = 0;
    for (const auto &st : net.stages)
        for (const auto &b : st.branches)
            for (const auto &op : b.ops)
                if (op.isConv()) {
                    planConv(op.conv, g);
                    ++planned;
                }
    EXPECT_EQ(planned, 95u); // 94 conv sub-layers + the FC-as-conv
}

TEST(ConvPlan, MoreSlicesMeanFewerPasses)
{
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    ConvPlan p35 = planConv(op, Geometry::xeonE5_35MB());
    ConvPlan p60 = planConv(op, Geometry::scaled60MB());
    EXPECT_LT(p60.serialPasses, p35.serialPasses);
}

TEST(ConvPlan, OutputsPartitionAcrossSlices)
{
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    ConvPlan plan = planConv(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.outputsPerSlice,
              (op.convCount() + 13) / 14);
}

TEST(PoolPlan, WindowsAndPasses)
{
    auto op = maxPool("p", 147, 147, 64, 3, 3, 2).pool;
    PoolPlan plan = planPool(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.windows, uint64_t(73) * 73 * 64);
    EXPECT_EQ(plan.windowSize, 9u);
    EXPECT_EQ(plan.inputRows, 72u);
    EXPECT_EQ(plan.parallelWindows, uint64_t(4032) * 256);
    EXPECT_EQ(plan.serialPasses, 1u);
    EXPECT_GT(plan.utilization, 0.0);
}

TEST(PoolPlan, LargePoolStillOnePass)
{
    auto op = maxPool("p", 71, 71, 192, 3, 3, 2).pool;
    PoolPlan plan = planPool(op, Geometry::xeonE5_35MB());
    EXPECT_EQ(plan.serialPasses, 1u);
}

} // namespace
