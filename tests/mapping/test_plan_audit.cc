/**
 * @file
 * Unit tests of the static band-plan auditor: the range-level
 * disjointness/liveness rules on hand-built plans (including
 * deliberately broken ones the engine would never emit), the
 * fail-fast gate, and auditPlan() over real compiled models in both
 * residency regimes and all engine backends.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "core/engine.hh"
#include "mapping/plan.hh"
#include "mapping/plan_audit.hh"

namespace
{

using namespace nc;
using core::BackendKind;
using mapping::AuditRange;
using mapping::AuditReport;
using mapping::auditRanges;
using mapping::BatchBandPlan;

/** A one-image-slot resident banding over @p filters arrays. */
BatchBandPlan
residentBands(uint64_t filters, unsigned scratch,
              const cache::Geometry &geom)
{
    return mapping::planBatchBands(filters, scratch, geom, true);
}

AuditRange
band(const std::string &label, uint64_t base, uint64_t arrays,
     uint32_t epoch = AuditRange::kAllEpochs, uint32_t unit = 0)
{
    AuditRange r;
    r.label = label;
    r.base = base;
    r.arrays = arrays;
    r.epoch = epoch;
    r.unit = unit;
    return r;
}

TEST(PlanAudit, CleanResidentPlanPasses)
{
    cache::Geometry geom; // 4480 arrays
    auto bands4 = residentBands(8, 2, geom);
    std::vector<AuditRange> rs = {
        band("conv a", 0, 4, AuditRange::kAllEpochs, 1),
        band("conv b", 4, 4, AuditRange::kAllEpochs, 2),
        band("scratch 0", 8, 1, AuditRange::kAllEpochs, 3),
        band("scratch 1", 9, 1, AuditRange::kAllEpochs, 4),
    };
    AuditReport rep = auditRanges(rs, geom, bands4);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.rangesChecked, 4u);
    EXPECT_GT(rep.pairsChecked, 0u);
    EXPECT_EQ(rep.summary(), "ok");
}

TEST(PlanAudit, ConcurrentOverlapIsNamedInTheViolation)
{
    cache::Geometry geom;
    auto bands = residentBands(8, 1, geom);
    std::vector<AuditRange> rs = {
        band("conv 'mix1/b0/1x1' filter band", 0, 4,
             AuditRange::kAllEpochs, 1),
        band("conv 'mix1/b1/3x3' filter band", 2, 4,
             AuditRange::kAllEpochs, 2),
    };
    AuditReport rep = auditRanges(rs, geom, bands);
    ASSERT_FALSE(rep.ok());
    // The diagnostic must name both ranges and their extents.
    EXPECT_NE(rep.violations[0].message.find("mix1/b0/1x1"),
              std::string::npos)
        << rep.summary();
    EXPECT_NE(rep.violations[0].message.find("mix1/b1/3x3"),
              std::string::npos)
        << rep.summary();
    EXPECT_NE(rep.violations[0].message.find("[0, 4)"),
              std::string::npos)
        << rep.summary();
}

TEST(PlanAudit, SerialEpochsMayReuseArrays)
{
    cache::Geometry geom;
    auto bands = mapping::planBatchBands(10000, 1, geom, false);
    ASSERT_FALSE(bands.resident);
    std::vector<AuditRange> rs = {
        band("stage 0 band", 1, 8, /*epoch=*/0, /*unit=*/0),
        band("stage 1 band", 1, 8, /*epoch=*/1, /*unit=*/0),
    };
    EXPECT_TRUE(auditRanges(rs, geom, bands).ok());

    // The same arrays in the SAME epoch but different units is the
    // race the auditor exists to catch.
    rs[1].epoch = 0;
    rs[1].unit = 1;
    EXPECT_FALSE(auditRanges(rs, geom, bands).ok());
}

TEST(PlanAudit, OneUnitMayTimeShareOnlyTheIdenticalBand)
{
    cache::Geometry geom;
    auto bands = mapping::planBatchBands(10000, 1, geom, false);
    // Two layers of one streaming branch share one identical band.
    std::vector<AuditRange> rs = {
        band("conv a", 1, 8, 0, 0),
        band("conv b", 1, 8, 0, 0),
    };
    EXPECT_TRUE(auditRanges(rs, geom, bands).ok());

    // A partial overlap within the unit is a layout bug even though
    // the unit is serial with itself.
    rs[1].base = 5;
    AuditReport rep = auditRanges(rs, geom, bands);
    ASSERT_FALSE(rep.ok());
    EXPECT_NE(rep.violations[0].message.find("partially overlap"),
              std::string::npos)
        << rep.summary();
}

TEST(PlanAudit, GeometryBoundsAreEnforced)
{
    cache::Geometry geom; // 4480 arrays
    auto bands = residentBands(4480, 1, geom);
    std::vector<AuditRange> rs = {
        band("conv beyond the cache", 4478, 4,
             AuditRange::kAllEpochs, 1),
    };
    AuditReport rep = auditRanges(rs, geom, bands);
    ASSERT_FALSE(rep.ok());
    EXPECT_NE(rep.violations[0].message.find("geometry"),
              std::string::npos)
        << rep.summary();

    EXPECT_FALSE(
        auditRanges({band("empty", 0, 0)}, geom, bands).ok());
}

TEST(PlanAudit, ImageReplicasMustConfineRangesToOneFootprint)
{
    cache::Geometry geom;
    auto bands = residentBands(8, 2, geom); // perImage=10, many slots
    ASSERT_GT(bands.imageSlots, 1u);
    // A range inside the cache but escaping slot 0's footprint would
    // be clobbered by replica 1.
    std::vector<AuditRange> rs = {
        band("conv escaping its slot", 8, 4,
             AuditRange::kAllEpochs, 1),
    };
    AuditReport rep = auditRanges(rs, geom, bands);
    ASSERT_FALSE(rep.ok());
    EXPECT_NE(rep.violations[0].message.find("per-image footprint"),
              std::string::npos)
        << rep.summary();
}

TEST(PlanAudit, BandingArithmeticIsChecked)
{
    cache::Geometry geom;
    BatchBandPlan broken = residentBands(8, 2, geom);
    broken.perImageArrays = 9; // != filters + scratch
    EXPECT_FALSE(auditRanges({}, geom, broken).ok());

    BatchBandPlan streaming =
        mapping::planBatchBands(10000, 2, geom, false);
    ASSERT_FALSE(streaming.resident);
    streaming.imageSlots = 2; // streaming must pin one slot
    EXPECT_FALSE(auditRanges({}, geom, streaming).ok());

    BatchBandPlan replicas = residentBands(2000, 2, geom);
    replicas.imageSlots = 3; // 3 * 2002 > 4480
    EXPECT_FALSE(auditRanges({}, geom, replicas).ok());
}

TEST(PlanAuditDeath, OverlappingPlanIsRejectedWithNames)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    cache::Geometry geom;
    auto bands = residentBands(8, 1, geom);
    std::vector<AuditRange> rs = {
        band("conv 'stem' filter band", 0, 4,
             AuditRange::kAllEpochs, 1),
        band("conv 'head' filter band", 3, 2,
             AuditRange::kAllEpochs, 2),
    };
    // The same gate Engine::compile runs: nc_fatal naming both bands.
    EXPECT_EXIT(
        mapping::auditOrDie(auditRanges(rs, geom, bands), "'test'"),
        ::testing::ExitedWithCode(1),
        "stem.*head.*overlap while concurrently live");
}

// --- auditPlan over real compiled models ---------------------------

TEST(PlanAudit, CompiledModelsPassInEveryBackend)
{
    dnn::Network net;
    net.name = "audit-net";
    net.stages.push_back(dnn::singleOpStage(
        "c1", dnn::conv("c1", 6, 6, 2, 3, 3, 3, 1, true)));
    net.stages.push_back(dnn::singleOpStage(
        "p1", dnn::maxPool("p1", 6, 6, 3, 2, 2, 2)));

    for (BackendKind kind :
         {BackendKind::Analytic, BackendKind::Reference,
          BackendKind::Functional, BackendKind::Isa}) {
        core::EngineOptions opts;
        opts.backend = kind;
        opts.threads = 2;
        auto model = core::Engine(opts).compile(net);
        AuditReport rep = mapping::auditPlan(model);
        EXPECT_TRUE(rep.ok())
            << core::backendKindName(kind) << ": " << rep.summary();
        if (kind == BackendKind::Functional ||
            kind == BackendKind::Isa) {
            EXPECT_GT(rep.rangesChecked, 0u);
        }
    }
}

TEST(PlanAudit, StreamingCompilePassesTheAudit)
{
    // The 6-array geometry from the batch-parity harness forces the
    // streaming regime (bands time-share across stages).
    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.threads = 2;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    opts.config.geometry.banksPerWay = 1;
    opts.config.geometry.subarraysPerBank = 1;
    opts.config.geometry.arraysPerSubarray = 1;

    dnn::Network net;
    net.name = "audit-streaming";
    net.stages.push_back(dnn::singleOpStage(
        "c1", dnn::conv("c1", 5, 5, 2, 3, 3, 4, 1, true)));
    net.stages.push_back(dnn::singleOpStage(
        "c2", dnn::conv("c2", 5, 5, 4, 3, 3, 4, 1, true)));

    auto model = core::Engine(opts).compile(net);
    ASSERT_FALSE(model.batchBands().resident);
    EXPECT_EQ(model.batchBands().imageSlots, 1u);
    AuditReport rep = mapping::auditPlan(model);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.rangesChecked, 0u);
}

} // namespace
