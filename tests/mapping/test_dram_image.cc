/** @file Tests for the preprocessed weight DRAM image (§IV-C). */

#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mapping/weight_layout.hh"

namespace
{

using namespace nc::mapping;
using nc::cache::Geometry;
using nc::dnn::conv;
using nc::dnn::QWeights;

QWeights
randomWeights(nc::Rng &rng, unsigned m, unsigned c, unsigned r,
              unsigned s)
{
    QWeights w(m, c, r, s);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

TEST(DramImage, PlacementsCarryEveryElementOnce)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 16, 16, 8, 3, 3, 4).conv;
    WeightLayout wl(op, planConv(op, g), g);

    auto placed = wl.placements();
    ASSERT_EQ(placed.size(), size_t(4) * 8 * 9);
    std::set<std::tuple<unsigned, unsigned, unsigned>> seen;
    for (const auto &p : placed)
        EXPECT_TRUE(seen.insert({p.m, p.c, p.k}).second);
}

TEST(DramImage, BytesFollowStreamingOrder)
{
    nc::Rng rng(88);
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 16, 16, 8, 3, 3, 4).conv;
    WeightLayout wl(op, planConv(op, g), g);
    QWeights w = randomWeights(rng, 4, 8, 3, 3);

    auto image = wl.dramImage(w);
    auto placed = wl.placements();
    ASSERT_EQ(image.size(), placed.size());
    for (size_t i = 0; i < image.size(); ++i) {
        const auto &p = placed[i];
        EXPECT_EQ(image[i], w.at(p.m, p.c, p.k / 3, p.k % 3))
            << "position " << i;
    }
}

TEST(DramImage, WordLinesFillSequentiallyWithinAnArray)
{
    // A linear DRAM burst must touch an array's word lines in
    // non-decreasing order — the property that makes one-pass filter
    // loading possible.
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 35, 35, 48, 5, 5, 8).conv; // split filters
    WeightLayout wl(op, planConv(op, g), g);
    auto placed = wl.placements();

    std::map<std::tuple<unsigned, unsigned, unsigned>, unsigned>
        last_row;
    for (const auto &p : placed) {
        auto arr = std::tuple(p.home.coord.way, p.home.coord.bank,
                              p.home.coord.array);
        auto it = last_row.find(arr);
        if (it != last_row.end()) {
            EXPECT_GE(p.home.row, it->second);
        }
        last_row[arr] = p.home.row;
    }
}

TEST(DramImage, PackedPointwiseImageSizeMatchesParams)
{
    nc::Rng rng(89);
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 8, 8, 64, 1, 1, 16).conv; // packs 16x
    WeightLayout wl(op, planConv(op, g), g);
    QWeights w = randomWeights(rng, 16, 64, 1, 1);
    auto image = wl.dramImage(w);
    EXPECT_EQ(image.size(), size_t(16) * 64);
}

TEST(DramImageDeath, MismatchedWeights)
{
    Geometry g = Geometry::xeonE5_35MB();
    auto op = conv("c", 16, 16, 8, 3, 3, 4).conv;
    WeightLayout wl(op, planConv(op, g), g);
    QWeights wrong(4, 8, 3, 2);
    EXPECT_DEATH(wl.dramImage(wrong), "does not match");
}

} // namespace
