/** @file Validates the Inception v3 graph against the paper's Table I. */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "dnn/inception_v3.hh"

namespace
{

using namespace nc::dnn;

class InceptionTable : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        net = new Network(inceptionV3());
        table = new std::vector<Table1Row>(paperTable1());
    }

    static void
    TearDownTestSuite()
    {
        delete net;
        delete table;
        net = nullptr;
        table = nullptr;
    }

    static Network *net;
    static std::vector<Table1Row> *table;
};

Network *InceptionTable::net = nullptr;
std::vector<Table1Row> *InceptionTable::table = nullptr;

TEST_F(InceptionTable, TwentyStages)
{
    EXPECT_EQ(net->stages.size(), 20u);
    EXPECT_EQ(table->size(), 20u);
    for (size_t i = 0; i < table->size(); ++i)
        EXPECT_EQ(net->stages[i].name, (*table)[i].name) << i;
}

TEST_F(InceptionTable, NinetyFourConvSubLayers)
{
    // "the state-of-art Inception v3 model which has 94 convolutional
    // sub-layers" (§II-A).
    unsigned convs = 0;
    unsigned fcs = 0;
    for (const auto &st : net->stages)
        for (const auto &b : st.branches)
            for (const auto &op : b.ops) {
                convs += op.kind == OpKind::Conv;
                fcs += op.kind == OpKind::FullyConnected;
            }
    EXPECT_EQ(convs, 94u);
    EXPECT_EQ(fcs, 1u); // the FC head executes as a 95th conv
}

TEST_F(InceptionTable, ConvCountsMatchTableI)
{
    for (size_t i = 0; i < table->size(); ++i) {
        const auto &row = (*table)[i];
        const auto &st = net->stages[i];
        if (row.convsTypo) {
            // Mixed_6e: the paper repeats 6c/6d's count; the 192-wide
            // structure (whose filter size the same row *does* use)
            // gives 554880.
            EXPECT_EQ(st.convCount(), 554880u) << row.name;
            EXPECT_NE(st.convCount(), row.convs) << row.name;
        } else {
            EXPECT_EQ(st.convCount(), row.convs) << row.name;
        }
    }
}

TEST_F(InceptionTable, FilterSizesMatchTableI)
{
    for (size_t i = 0; i < table->size(); ++i) {
        const auto &row = (*table)[i];
        const auto &st = net->stages[i];
        double mib = nc::bytesToMiB(st.filterBytes());
        if (row.filterTypo) {
            // Mixed_6a's published 0.255 MB cannot hold its own
            // 995,328-parameter 384-filter reduction conv, and
            // Mixed_6e's 1.898 omits one of the four 1x1 towers.
            EXPECT_GT(mib, row.filterMiB) << row.name;
        } else {
            EXPECT_NEAR(mib, row.filterMiB, 0.001) << row.name;
        }
    }
}

TEST_F(InceptionTable, InputSizesMatchTableI)
{
    for (size_t i = 0; i < table->size(); ++i) {
        const auto &row = (*table)[i];
        const auto &st = net->stages[i];
        EXPECT_NEAR(nc::bytesToMiB(st.inputBytes()), row.inputMiB,
                    0.001)
            << row.name;
    }
}

TEST_F(InceptionTable, FeatureMapHeightsMatchTableI)
{
    for (size_t i = 0; i < table->size(); ++i) {
        const auto &row = (*table)[i];
        const auto &st = net->stages[i];
        EXPECT_EQ(st.inputHeight(), row.h) << row.name;
        EXPECT_EQ(st.outputHeight(), row.e) << row.name;
    }
}

TEST_F(InceptionTable, StageOutputsChainToNextStageInputs)
{
    // Channel/count bookkeeping: each stage's concatenated output is
    // exactly the next stage's per-branch input.
    for (size_t i = 0; i + 1 < net->stages.size(); ++i) {
        const auto &cur = net->stages[i];
        const auto &next = net->stages[i + 1];
        uint64_t next_input_per_branch =
            next.inputBytes() / next.branches.size();
        EXPECT_EQ(cur.outputBytes(), next_input_per_branch)
            << cur.name << " -> " << next.name;
    }
}

TEST_F(InceptionTable, FilterRangeColumn)
{
    // "The filter sizes (RxS) range from 1-25 bytes in Inception v3.
    // The common case is a 3x3 filter."
    unsigned max_rs = 0;
    for (const auto &st : net->stages)
        max_rs = std::max(max_rs, st.maxFilterRS());
    EXPECT_EQ(max_rs, 25u);
    // The 35x35 towers carry the 5x5s.
    EXPECT_EQ(net->stages[7].maxFilterRS(), 25u);  // Mixed_5b
    EXPECT_EQ(net->stages[11].maxFilterRS(), 7u);  // Mixed_6b: 1x7/7x1
}

TEST_F(InceptionTable, TotalWeightsAroundTwentyThreeMiB)
{
    double mib = nc::bytesToMiB(net->filterBytes());
    EXPECT_GT(mib, 22.0);
    EXPECT_LT(mib, 24.5);
}

TEST_F(InceptionTable, KnownTypoFlagsAreExactlyTwo)
{
    unsigned typos = 0;
    for (const auto &row : *table)
        typos += row.convsTypo + row.filterTypo;
    EXPECT_EQ(typos, 3u);
}

} // namespace
