/** @file Tests for float and quantized tensors. */

#include <gtest/gtest.h>

#include "dnn/tensor.hh"

namespace
{

using namespace nc::dnn;

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(3, 4, 5);
    EXPECT_EQ(t.channels(), 3u);
    EXPECT_EQ(t.height(), 4u);
    EXPECT_EQ(t.width(), 5u);
    EXPECT_EQ(t.size(), 60u);
    t.at(2, 3, 4) = 1.5f;
    EXPECT_FLOAT_EQ(t.at(2, 3, 4), 1.5f);
    // CHW layout: last element of the buffer.
    EXPECT_FLOAT_EQ(t.data().back(), 1.5f);
}

TEST(Tensor, MinMax)
{
    Tensor t(1, 2, 2);
    t.at(0, 0, 0) = -2.0f;
    t.at(0, 1, 1) = 7.0f;
    EXPECT_FLOAT_EQ(t.minValue(), -2.0f);
    EXPECT_FLOAT_EQ(t.maxValue(), 7.0f);
}

TEST(Tensor, EmptyMinMax)
{
    Tensor t;
    EXPECT_FLOAT_EQ(t.minValue(), 0.0f);
    EXPECT_FLOAT_EQ(t.maxValue(), 0.0f);
}

TEST(QTensorTest, FromFloatRoundTrip)
{
    Tensor t(1, 2, 2);
    t.at(0, 0, 0) = 0.0f;
    t.at(0, 0, 1) = 0.5f;
    t.at(0, 1, 0) = 1.0f;
    t.at(0, 1, 1) = 0.25f;

    QuantParams qp = QuantParams::fromRange(0.0f, 1.0f);
    QTensor q = QTensor::fromFloat(t, qp);
    Tensor back = q.toFloat();
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_NEAR(back.data()[i], t.data()[i], qp.scale() / 2);
}

TEST(QTensorTest, StoresParams)
{
    QuantParams qp = QuantParams::fromRange(-1.0f, 3.0f);
    QTensor q(2, 2, 2, qp);
    EXPECT_FLOAT_EQ(q.params().maxVal, 3.0f);
    q.at(1, 1, 1) = 77;
    EXPECT_EQ(q.at(1, 1, 1), 77);
}

} // namespace
