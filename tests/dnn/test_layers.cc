/** @file Tests for layer descriptors and shape inference. */

#include <gtest/gtest.h>

#include "dnn/layers.hh"

namespace
{

using namespace nc::dnn;

TEST(OutDim, SameAndValid)
{
    EXPECT_EQ(outDim(299, 3, 2, false), 149u);
    EXPECT_EQ(outDim(149, 3, 1, false), 147u);
    EXPECT_EQ(outDim(147, 3, 1, true), 147u);
    EXPECT_EQ(outDim(35, 3, 2, false), 17u);
    EXPECT_EQ(outDim(35, 1, 1, true), 35u);
    EXPECT_EQ(outDim(17, 3, 2, false), 8u);
}

TEST(ConvOpShape, CountsMatchHandComputation)
{
    Op op = conv("c", 147, 147, 32, 3, 3, 64, 1, true);
    const ConvOp &c = op.conv;
    EXPECT_EQ(c.outH(), 147u);
    EXPECT_EQ(c.convCount(), uint64_t(147) * 147 * 64);
    EXPECT_EQ(c.macsPerConv(), 9u * 32);
    EXPECT_EQ(c.filterBytes(), uint64_t(9) * 32 * 64);
    EXPECT_EQ(c.inputBytes(), uint64_t(147) * 147 * 32);
    EXPECT_EQ(c.outputBytes(), uint64_t(147) * 147 * 64);
    EXPECT_EQ(c.flops(), 2 * c.convCount() * c.macsPerConv());
}

TEST(ConvOpShape, AsymmetricFilters)
{
    Op op = conv("c", 17, 17, 128, 1, 7, 192);
    EXPECT_EQ(op.conv.outH(), 17u);
    EXPECT_EQ(op.conv.outW(), 17u);
    EXPECT_EQ(op.conv.filterBytes(), uint64_t(7) * 128 * 192);
}

TEST(FullyConnectedAsConv, OneByOne)
{
    Op op = fullyConnected("fc", 2048, 1001);
    EXPECT_EQ(op.kind, OpKind::FullyConnected);
    EXPECT_TRUE(op.isConv());
    EXPECT_EQ(op.conv.convCount(), 1001u);
    EXPECT_EQ(op.conv.filterBytes(), uint64_t(2048) * 1001);
}

TEST(PoolOpShape, Windows)
{
    Op op = maxPool("p", 147, 147, 64, 3, 3, 2);
    EXPECT_EQ(op.kind, OpKind::MaxPool);
    EXPECT_EQ(op.pool.outH(), 73u);
    EXPECT_EQ(op.pool.windowCount(), uint64_t(73) * 73 * 64);
    EXPECT_EQ(op.inputBytes(), uint64_t(147) * 147 * 64);
}

TEST(StageAggregates, SingleOp)
{
    Stage st = singleOpStage("s", conv("c", 35, 35, 192, 1, 1, 64));
    EXPECT_EQ(st.convCount(), uint64_t(35) * 35 * 64);
    EXPECT_EQ(st.inputHeight(), 35u);
    EXPECT_EQ(st.outputHeight(), 35u);
    EXPECT_EQ(st.minFilterRS(), 1u);
    EXPECT_EQ(st.maxFilterRS(), 1u);
    EXPECT_FALSE(st.isPoolOnly());
}

TEST(StageAggregates, PoolOnly)
{
    Stage st =
        singleOpStage("p", maxPool("p", 147, 147, 64, 3, 3, 2));
    EXPECT_TRUE(st.isPoolOnly());
    EXPECT_EQ(st.convCount(), 0u);
    EXPECT_EQ(st.filterBytes(), 0u);
}

TEST(StageAggregates, MultiBranchInputCountsStageInputPerBranch)
{
    Stage st;
    st.name = "mixed";
    st.branches.push_back(
        Branch{"b0", {conv("a", 35, 35, 192, 1, 1, 64)}});
    st.branches.push_back(
        Branch{"b1",
               {conv("b", 35, 35, 192, 1, 1, 48),
                conv("c", 35, 35, 48, 5, 5, 64)}});
    // Input column: stage input once per branch.
    EXPECT_EQ(st.inputBytes(), 2u * 35 * 35 * 192);
    // Activation bytes additionally count the 48-channel intermediate.
    EXPECT_EQ(st.activationBytes(),
              2u * 35 * 35 * 192 + uint64_t(35) * 35 * 48);
    // Output: concat of branch outputs.
    EXPECT_EQ(st.outputBytes(), uint64_t(35) * 35 * (64 + 64));
    EXPECT_EQ(st.maxFilterRS(), 25u);
}

TEST(NetworkAggregates, SumsStages)
{
    Network net;
    net.stages.push_back(
        singleOpStage("a", conv("a", 8, 8, 16, 3, 3, 32)));
    net.stages.push_back(
        singleOpStage("b", conv("b", 8, 8, 32, 1, 1, 8)));
    EXPECT_EQ(net.convCount(),
              net.stages[0].convCount() + net.stages[1].convCount());
    EXPECT_EQ(net.filterBytes(),
              net.stages[0].filterBytes() + net.stages[1].filterBytes());
    EXPECT_GT(net.macs(), 0u);
    EXPECT_EQ(net.flops(), 2 * net.macs());
}

TEST(OpKindNames, Strings)
{
    EXPECT_STREQ(opKindName(OpKind::Conv), "conv");
    EXPECT_STREQ(opKindName(OpKind::MaxPool), "maxpool");
    EXPECT_STREQ(opKindName(OpKind::AvgPool), "avgpool");
    EXPECT_STREQ(opKindName(OpKind::FullyConnected), "fc");
}

TEST(OutDimDeath, ValidWindowTooLarge)
{
    EXPECT_DEATH(outDim(2, 3, 1, false), "window");
}

} // namespace
