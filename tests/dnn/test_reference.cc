/** @file Tests for the reference executors. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/reference.hh"

namespace
{

using namespace nc::dnn;

TEST(ConvFloat, IdentityKernel)
{
    Tensor in(1, 3, 3);
    for (unsigned i = 0; i < 9; ++i)
        in.data()[i] = static_cast<float>(i);
    Weights w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = 1.0f;
    Tensor out = convFloat(in, w, 1, true);
    ASSERT_EQ(out.size(), in.size());
    for (unsigned i = 0; i < 9; ++i)
        EXPECT_FLOAT_EQ(out.data()[i], in.data()[i]);
}

TEST(ConvFloat, SumKernelWithSamePadding)
{
    Tensor in(1, 3, 3);
    for (auto &v : in.data())
        v = 1.0f;
    Weights w(1, 1, 3, 3);
    for (auto &v : w.data)
        v = 1.0f;
    Tensor out = convFloat(in, w, 1, true);
    // Centre sees all 9; corners see 4.
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 9.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 6.0f);
}

TEST(ConvFloat, ValidStride2Shape)
{
    Tensor in(3, 9, 9);
    Weights w(4, 3, 3, 3);
    Tensor out = convFloat(in, w, 2, false);
    EXPECT_EQ(out.channels(), 4u);
    EXPECT_EQ(out.height(), 4u);
    EXPECT_EQ(out.width(), 4u);
}

TEST(ConvFloat, ChannelAccumulation)
{
    Tensor in(2, 1, 1);
    in.at(0, 0, 0) = 2.0f;
    in.at(1, 0, 0) = 3.0f;
    Weights w(1, 2, 1, 1);
    w.at(0, 0, 0, 0) = 10.0f;
    w.at(0, 1, 0, 0) = 100.0f;
    Tensor out = convFloat(in, w, 1, true);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 320.0f);
}

TEST(MaxPoolFloat, Basic)
{
    Tensor in(1, 4, 4);
    for (unsigned i = 0; i < 16; ++i)
        in.data()[i] = static_cast<float>(i);
    Tensor out = maxPoolFloat(in, 2, 2, 2, false);
    EXPECT_EQ(out.height(), 2u);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 15.0f);
}

TEST(AvgPoolFloat, CountsOnlyValidPixels)
{
    Tensor in(1, 3, 3);
    for (auto &v : in.data())
        v = 6.0f;
    Tensor out = avgPoolFloat(in, 3, 3, 1, true);
    // Every window averages 6s, regardless of padding membership.
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 6.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 6.0f);
}

TEST(ReluFloat, Clamps)
{
    Tensor in(1, 1, 3);
    in.at(0, 0, 0) = -1.0f;
    in.at(0, 0, 1) = 0.0f;
    in.at(0, 0, 2) = 2.0f;
    Tensor out = reluFloat(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 2), 2.0f);
}

TEST(ConvQuant, TracksFloatWithinQuantError)
{
    nc::Rng rng(21);
    Tensor in(4, 6, 6);
    for (auto &v : in.data())
        v = static_cast<float>(rng.uniformReal(0.0, 1.0));
    Weights w(3, 4, 3, 3);
    for (auto &v : w.data)
        v = static_cast<float>(rng.uniformReal(-0.5, 0.5));

    QuantParams qi = QuantParams::fromRange(0.0f, 1.0f);
    QuantParams qw = QuantParams::fromRange(-0.5f, 0.5f);
    QTensor qin = QTensor::fromFloat(in, qi);
    QWeights qwts(3, 4, 3, 3, qw);
    for (unsigned mi = 0; mi < 3; ++mi)
        for (unsigned ci = 0; ci < 4; ++ci)
            for (unsigned ri = 0; ri < 3; ++ri)
                for (unsigned si = 0; si < 3; ++si)
                    qwts.at(mi, ci, ri, si) =
                        qw.quantize(w.at(mi, ci, ri, si));

    Tensor fout = convFloat(in, w, 1, false);
    unsigned oh, ow;
    auto acc = convQuant(qin, qwts, 1, false, oh, ow);
    ASSERT_EQ(oh, fout.height());
    ASSERT_EQ(ow, fout.width());

    double s = double(qi.scale()) * qw.scale();
    for (unsigned mi = 0; mi < 3; ++mi)
        for (unsigned y = 0; y < oh; ++y)
            for (unsigned x = 0; x < ow; ++x) {
                double deq =
                    s * acc[(size_t(mi) * oh + y) * ow + x];
                // 36 products, each within half a step per operand.
                EXPECT_NEAR(deq, fout.at(mi, y, x), 0.15)
                    << mi << "," << y << "," << x;
            }
}

TEST(ConvQuantUnsigned, MatchesDirectSum)
{
    QTensor in(2, 3, 3);
    QWeights w(1, 2, 2, 2);
    nc::Rng rng(3);
    for (auto &v : in.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));

    unsigned oh, ow;
    auto acc = convQuantUnsigned(in, w, 1, false, oh, ow);
    ASSERT_EQ(oh, 2u);
    ASSERT_EQ(ow, 2u);

    uint32_t want = 0;
    for (unsigned ci = 0; ci < 2; ++ci)
        for (unsigned ri = 0; ri < 2; ++ri)
            for (unsigned si = 0; si < 2; ++si)
                want += uint32_t(in.at(ci, ri, si)) *
                        w.at(0, ci, ri, si);
    EXPECT_EQ(acc[0], want);
}

TEST(MaxPoolQuant, MatchesFloatPath)
{
    nc::Rng rng(17);
    QTensor in(3, 5, 5, QuantParams::fromRange(0.0f, 1.0f));
    for (auto &v : in.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    QTensor out = maxPoolQuant(in, 3, 3, 2, false);
    EXPECT_EQ(out.height(), 2u);
    for (unsigned c = 0; c < 3; ++c) {
        uint8_t want = 0;
        for (unsigned y = 0; y < 3; ++y)
            for (unsigned x = 0; x < 3; ++x)
                want = std::max(want, in.at(c, y, x));
        EXPECT_EQ(out.at(c, 0, 0), want);
    }
}

} // namespace
