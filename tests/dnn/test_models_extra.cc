/** @file Structural checks for the AlexNet / VGG-16 workloads. */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "dnn/models_extra.hh"

namespace
{

using namespace nc::dnn;

TEST(AlexNet, Shape)
{
    Network net = alexNet();
    EXPECT_EQ(net.stages.size(), 11u);
    // conv1 VALID on 227 with 11x11/4 -> 55.
    EXPECT_EQ(net.stages[0].outputHeight(), 55u);
    // pool5 leaves 6x6x256 = 9216 for fc6.
    EXPECT_EQ(net.stages[7].outputHeight(), 6u);
    EXPECT_EQ(net.stages[7].outputBytes(), uint64_t(6) * 6 * 256);
}

TEST(AlexNet, MacCountNearPublished)
{
    // AlexNet's single-tower conv MACs are ~1.07 G; with the three FC
    // layers ~1.13 G total (weights ~60.9 M params).
    Network net = alexNet();
    double gmacs = static_cast<double>(net.macs()) * 1e-9;
    EXPECT_GT(gmacs, 0.9);
    EXPECT_LT(gmacs, 1.3);
    double params = static_cast<double>(net.filterBytes()) * 1e-6;
    EXPECT_NEAR(params, 60.9, 3.0);
}

TEST(Vgg16, Shape)
{
    Network net = vgg16();
    // 13 convs + 5 pools + 3 FCs = 21 stages.
    EXPECT_EQ(net.stages.size(), 21u);
    unsigned convs = 0, pools = 0, fcs = 0;
    for (const auto &st : net.stages)
        for (const auto &b : st.branches)
            for (const auto &op : b.ops) {
                convs += op.kind == OpKind::Conv;
                pools += op.kind == OpKind::MaxPool;
                fcs += op.kind == OpKind::FullyConnected;
            }
    EXPECT_EQ(convs, 13u);
    EXPECT_EQ(pools, 5u);
    EXPECT_EQ(fcs, 3u);
}

TEST(Vgg16, MacsAndParamsNearPublished)
{
    // VGG-16: ~15.5 GMACs of convolution (~15.3G) + 0.12G FC, and
    // ~138 M parameters.
    Network net = vgg16();
    double gmacs = static_cast<double>(net.macs()) * 1e-9;
    EXPECT_NEAR(gmacs, 15.5, 1.0);
    double params = static_cast<double>(net.filterBytes()) * 1e-6;
    EXPECT_NEAR(params, 138.3, 3.0);
}

TEST(Vgg16, SpatialChain)
{
    Network net = vgg16();
    // 224 -> 112 -> 56 -> 28 -> 14 -> 7 through the five pools.
    EXPECT_EQ(net.stages[2].outputHeight(), 112u);  // block1_pool
    EXPECT_EQ(net.stages[5].outputHeight(), 56u);   // block2_pool
    EXPECT_EQ(net.stages[9].outputHeight(), 28u);   // block3_pool
    EXPECT_EQ(net.stages[13].outputHeight(), 14u);  // block4_pool
    EXPECT_EQ(net.stages[17].outputHeight(), 7u);   // block5_pool
}

TEST(ResNet18, Shape)
{
    Network net = resNet18();
    // conv1 + pool1 + 8 blocks + avgpool + fc.
    EXPECT_EQ(net.stages.size(), 12u);
    unsigned convs = 0, adds = 0, projs = 0;
    for (const auto &st : net.stages)
        for (const auto &b : st.branches)
            for (const auto &op : b.ops) {
                convs += op.kind == OpKind::Conv;
                adds += op.kind == OpKind::EltwiseAdd;
                projs += b.shortcut && op.kind == OpKind::Conv;
            }
    EXPECT_EQ(convs, 20u); // 1 stem + 16 block convs + 3 projections
    EXPECT_EQ(adds, 8u);
    EXPECT_EQ(projs, 3u);
}

TEST(ResNet18, MacsAndParamsNearPublished)
{
    // ResNet-18: ~1.82 GMACs, ~11.7 M parameters.
    Network net = resNet18();
    double gmacs = static_cast<double>(net.macs()) * 1e-9;
    EXPECT_NEAR(gmacs, 1.82, 0.25);
    double params = static_cast<double>(net.filterBytes()) * 1e-6;
    EXPECT_NEAR(params, 11.7, 1.5);
}

TEST(ResNet18, ShortcutBranchesDoNotConcat)
{
    Network net = resNet18();
    // layer2_0 downsamples 56 -> 28 with a projection; the block
    // output is the eltwise result only (28x28x128), not a concat.
    const Stage &blk = net.stages[4];
    EXPECT_EQ(blk.name, "layer2_0");
    ASSERT_EQ(blk.branches.size(), 2u);
    EXPECT_TRUE(blk.branches[1].shortcut);
    EXPECT_EQ(blk.outputBytes(), uint64_t(28) * 28 * 128);
    EXPECT_EQ(blk.outputHeight(), 28u);
}

TEST(ResNet18, EltwiseOpBytes)
{
    Op op = eltwiseAdd("add", 7, 7, 512);
    EXPECT_EQ(op.kind, OpKind::EltwiseAdd);
    EXPECT_EQ(op.inputBytes(), 2u * 7 * 7 * 512);
    EXPECT_EQ(op.outputBytes(), uint64_t(7) * 7 * 512);
    EXPECT_STREQ(opKindName(op.kind), "eltwise-add");
}

TEST(ModelsExtra, StagesChain)
{
    for (const Network &net : {alexNet(), vgg16()}) {
        for (size_t i = 0; i + 1 < net.stages.size(); ++i) {
            // FC stages flatten spatial dims; compare byte counts.
            uint64_t out = net.stages[i].outputBytes();
            uint64_t in = net.stages[i + 1].inputBytes();
            EXPECT_EQ(out, in)
                << net.name << ": " << net.stages[i].name << " -> "
                << net.stages[i + 1].name;
        }
    }
}

} // namespace
