/** @file Tests for TF-style 8-bit quantization. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/quantize.hh"

namespace
{

using namespace nc::dnn;

TEST(QuantParams, ScaleAndZeroPoint)
{
    QuantParams qp = QuantParams::fromRange(-1.0f, 1.0f);
    // The zero-point nudge stretches min slightly, so the scale moves
    // by at most one part in 255.
    EXPECT_NEAR(qp.scale(), 2.0f / 255.0f, 2.0f / 255.0f / 128.0f);
    // Zero is exactly representable after nudging.
    uint8_t z = qp.quantize(0.0f);
    EXPECT_NEAR(qp.dequantize(z), 0.0f, 1e-7);
}

TEST(QuantParams, RoundTripWithinHalfStep)
{
    QuantParams qp = QuantParams::fromRange(-3.0f, 5.0f);
    nc::Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        float x = static_cast<float>(rng.uniformReal(-3.0, 5.0));
        float back = qp.dequantize(qp.quantize(x));
        EXPECT_NEAR(back, x, qp.scale() / 2 + 1e-6);
    }
}

TEST(QuantParams, SaturatesOutOfRange)
{
    QuantParams qp = QuantParams::fromRange(0.0f, 1.0f);
    EXPECT_EQ(qp.quantize(-5.0f), 0);
    EXPECT_EQ(qp.quantize(9.0f), 255);
}

TEST(QuantParams, AllPositiveRangeStillCoversZero)
{
    QuantParams qp = QuantParams::fromRange(0.5f, 2.0f);
    EXPECT_LE(qp.minVal, 0.0f);
    EXPECT_EQ(qp.quantize(0.0f), qp.zeroPoint());
}

TEST(QuantParams, DegenerateRangeHandled)
{
    QuantParams qp = QuantParams::fromRange(0.0f, 0.0f);
    EXPECT_GT(qp.scale(), 0.0f);
}

TEST(QuantizeMultiplier, NormalizedRepresentation)
{
    int32_t mult;
    int shift;
    for (double m : {0.0009765, 0.25, 0.5, 0.75, 0.99, 1.5, 7.3}) {
        quantizeMultiplier(m, mult, shift);
        EXPECT_GE(mult, int32_t(1) << 30);
        EXPECT_LT(int64_t(mult), int64_t(1) << 31);
        double back = double(mult) * std::pow(2.0, -shift);
        EXPECT_NEAR(back, m, m * 1e-6);
    }
}

TEST(Requantize, MatchesFloatPath)
{
    // acc * real_multiplier + zero == requantize(acc, mult, shift, z)
    double real = 0.0478;
    int32_t mult;
    int shift;
    quantizeMultiplier(real, mult, shift);
    nc::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        auto acc = static_cast<int32_t>(rng.uniformInt(-40000, 40000));
        auto want = static_cast<int64_t>(
            std::lround(acc * real) + 7);
        want = std::clamp<int64_t>(want, 0, 255);
        uint8_t got = requantize(acc, mult, shift, 7);
        EXPECT_NEAR(got, want, 1) << "acc=" << acc;
    }
}

TEST(Requantize, Clamps)
{
    int32_t mult;
    int shift;
    quantizeMultiplier(1.0, mult, shift);
    EXPECT_EQ(requantize(1 << 20, mult, shift, 0), 255);
    EXPECT_EQ(requantize(-5, mult, shift, 0), 0);
}

} // namespace
