/** @file Checks the SPICE-derived timing/energy/area tables (§V). */

#include <gtest/gtest.h>

#include "sram/timing.hh"

namespace
{

using namespace nc::sram;

TEST(Timing, PaperClockDomains)
{
    TimingParams t;
    EXPECT_DOUBLE_EQ(t.computeClock.freqHz, 2.5e9);
    EXPECT_DOUBLE_EQ(t.accessClock.freqHz, 4.0e9);
}

TEST(Timing, ComputeSlowdownMatchesPaper)
{
    // Paper: 1022 ps compute vs 654 ps read, "about 1.6x".
    TimingParams t;
    EXPECT_NEAR(t.computeSlowdown(), 1.6, 0.05);
}

TEST(Timing, EnergyScaling28To22)
{
    EnergyParams e28 = EnergyParams::node28nm();
    EnergyParams e22 = EnergyParams::node22nm();
    EXPECT_DOUBLE_EQ(e28.accessPj, 13.9);
    EXPECT_DOUBLE_EQ(e28.computePj, 25.7);
    EXPECT_DOUBLE_EQ(e22.accessPj, 8.6);
    EXPECT_DOUBLE_EQ(e22.computePj, 15.4);
    // Scaling shrinks both, by a similar factor.
    EXPECT_LT(e22.accessPj, e28.accessPj);
    EXPECT_LT(e22.computePj, e28.computePj);
}

TEST(Timing, DefaultEnergyIsHostNode)
{
    EnergyParams e;
    EXPECT_DOUBLE_EQ(e.accessPj, EnergyParams::node22nm().accessPj);
}

TEST(Timing, AreaOverheadsMatchPaper)
{
    AreaParams a;
    EXPECT_DOUBLE_EQ(a.peripheralOverhead, 0.075); // 7.5% per array
    EXPECT_LE(a.dieOverhead, 0.02);                // <2% of the die
    EXPECT_DOUBLE_EQ(a.tmuAreaMm2, 0.019);
    EXPECT_DOUBLE_EQ(a.computeLogicUm, 7.0);
}

} // namespace
