/** @file Unit tests for the compute SRAM array micro-ops. */

#include <gtest/gtest.h>

#include "sram/array.hh"

namespace
{

using nc::sram::Array;
using nc::sram::BitRow;

/** Put a pattern on two rows: lane-wise all four A/B combinations. */
class ArrayCompute : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // lanes:      0  1  2  3
        // row A bits: 0  0  1  1
        // row B bits: 0  1  0  1
        arr.poke(0, 2, true);
        arr.poke(0, 3, true);
        arr.poke(1, 1, true);
        arr.poke(1, 3, true);
    }

    Array arr{16, 4};
};

TEST_F(ArrayCompute, DualRowAnd)
{
    arr.opAnd(0, 1, 2);
    EXPECT_FALSE(arr.peek(2, 0));
    EXPECT_FALSE(arr.peek(2, 1));
    EXPECT_FALSE(arr.peek(2, 2));
    EXPECT_TRUE(arr.peek(2, 3));
}

TEST_F(ArrayCompute, DualRowNor)
{
    arr.opNor(0, 1, 2);
    EXPECT_TRUE(arr.peek(2, 0));
    EXPECT_FALSE(arr.peek(2, 1));
    EXPECT_FALSE(arr.peek(2, 2));
    EXPECT_FALSE(arr.peek(2, 3));
}

TEST_F(ArrayCompute, DualRowOrXorXnor)
{
    arr.opOr(0, 1, 2);
    arr.opXor(0, 1, 3);
    arr.opXnor(0, 1, 4);
    // OR: 0 1 1 1 ; XOR: 0 1 1 0 ; XNOR: 1 0 0 1
    EXPECT_FALSE(arr.peek(2, 0));
    EXPECT_TRUE(arr.peek(2, 1) && arr.peek(2, 2) && arr.peek(2, 3));
    EXPECT_FALSE(arr.peek(3, 0));
    EXPECT_TRUE(arr.peek(3, 1) && arr.peek(3, 2));
    EXPECT_FALSE(arr.peek(3, 3));
    EXPECT_TRUE(arr.peek(4, 0) && arr.peek(4, 3));
    EXPECT_FALSE(arr.peek(4, 1) || arr.peek(4, 2));
}

TEST_F(ArrayCompute, FullAdderCycle)
{
    arr.carrySet(false);
    arr.opAdd(0, 1, 2);
    // sum = A^B^0: 0 1 1 0 ; carry = A&B: 0 0 0 1
    EXPECT_FALSE(arr.peek(2, 0));
    EXPECT_TRUE(arr.peek(2, 1) && arr.peek(2, 2));
    EXPECT_FALSE(arr.peek(2, 3));
    EXPECT_FALSE(arr.carry().get(0));
    EXPECT_TRUE(arr.carry().get(3));
}

TEST_F(ArrayCompute, FullAdderWithCarryIn)
{
    arr.carrySet(true);
    arr.opAdd(0, 1, 2);
    // sum = A^B^1: 1 0 0 1 ; carry = A&B | (A^B): 0 1 1 1
    EXPECT_TRUE(arr.peek(2, 0) && arr.peek(2, 3));
    EXPECT_FALSE(arr.peek(2, 1) || arr.peek(2, 2));
    EXPECT_FALSE(arr.carry().get(0));
    EXPECT_TRUE(arr.carry().get(1) && arr.carry().get(2) &&
                arr.carry().get(3));
}

TEST_F(ArrayCompute, CopyAndCopyInv)
{
    arr.opCopy(0, 5);
    arr.opCopyInv(0, 6);
    for (unsigned lane = 0; lane < 4; ++lane) {
        EXPECT_EQ(arr.peek(5, lane), arr.peek(0, lane));
        EXPECT_EQ(arr.peek(6, lane), !arr.peek(0, lane));
    }
}

TEST_F(ArrayCompute, ZeroAndOnes)
{
    arr.opOnes(7);
    EXPECT_EQ(arr.rowRef(7).popcount(), 4u);
    arr.opZero(7);
    EXPECT_EQ(arr.rowRef(7).popcount(), 0u);
}

TEST_F(ArrayCompute, TagPredicationGatesWriteback)
{
    // Tag = row B (lanes 1 and 3 enabled).
    arr.opLoadTag(1);
    arr.opOnes(8, /*pred=*/true);
    EXPECT_FALSE(arr.peek(8, 0));
    EXPECT_TRUE(arr.peek(8, 1));
    EXPECT_FALSE(arr.peek(8, 2));
    EXPECT_TRUE(arr.peek(8, 3));
}

TEST_F(ArrayCompute, TagInvAndTagAnd)
{
    arr.opLoadTagInv(1); // lanes 0, 2
    EXPECT_TRUE(arr.tag().get(0) && arr.tag().get(2));
    arr.opTagAnd(0); // AND with A: lane 2 only
    EXPECT_FALSE(arr.tag().get(0));
    EXPECT_TRUE(arr.tag().get(2));
    EXPECT_EQ(arr.tag().popcount(), 1u);
}

TEST_F(ArrayCompute, TagFromCarry)
{
    arr.carrySet(false);
    arr.opAdd(0, 1, 2); // carry = 0 0 0 1
    arr.opLoadTagFromCarry();
    EXPECT_EQ(arr.tag().popcount(), 1u);
    EXPECT_TRUE(arr.tag().get(3));
    arr.opLoadTagFromCarry(/*invert=*/true);
    EXPECT_EQ(arr.tag().popcount(), 3u);
    EXPECT_FALSE(arr.tag().get(3));
}

TEST_F(ArrayCompute, StoreTagAndCarry)
{
    arr.opLoadTag(0);
    arr.opStoreTag(9);
    EXPECT_TRUE(arr.rowRef(9) == arr.rowRef(0));
    arr.carrySet(true);
    arr.opStoreCarry(10);
    EXPECT_EQ(arr.rowRef(10).popcount(), 4u);
}

TEST_F(ArrayCompute, LaneShiftMovesTowardLowerLanes)
{
    arr.opLaneShift(1, 11, 2); // B = 0 1 0 1 -> 0 1 0 0
    EXPECT_TRUE(arr.peek(11, 1));
    EXPECT_EQ(arr.rowRef(11).popcount(), 1u);
}

TEST(ArrayCycles, ComputeAndAccessCounted)
{
    Array arr(8, 4);
    EXPECT_EQ(arr.computeCycles(), 0u);
    arr.opZero(0);
    arr.opAdd(0, 1, 2);
    arr.opLoadTag(0);
    EXPECT_EQ(arr.computeCycles(), 3u);
    arr.opLaneShift(0, 1, 1); // default 2 cycles (sense + drive)
    EXPECT_EQ(arr.computeCycles(), 5u);

    arr.readRow(0);
    arr.writeRow(1, BitRow(4));
    EXPECT_EQ(arr.accessCycles(), 2u);

    arr.resetCycles();
    EXPECT_EQ(arr.computeCycles(), 0u);
    EXPECT_EQ(arr.accessCycles(), 0u);
}

TEST(ArrayCycles, CarryAndTagPresetsAreFree)
{
    Array arr(8, 4);
    arr.carrySet(true);
    arr.tagSet(false);
    EXPECT_EQ(arr.computeCycles(), 0u);
}

TEST(ArrayGeometry, DefaultIs8KB)
{
    Array arr;
    EXPECT_EQ(arr.rows(), 256u);
    EXPECT_EQ(arr.cols(), 256u);
    EXPECT_EQ(arr.sizeBytes(), 8192u);
}

TEST(ArrayDeath, SameRowDualActivation)
{
    Array arr(8, 4);
    EXPECT_DEATH(arr.opAnd(3, 3, 4), "dual activation");
}

TEST(ArrayDeath, RowOutOfRange)
{
    if (!nc::kDebugAsserts)
        GTEST_SKIP() << "row-bounds asserts compile out in Release";
    Array arr(8, 4);
    EXPECT_DEATH(arr.opCopy(8, 0), "row");
    EXPECT_DEATH(arr.readRow(9), "row");
}

TEST(ArrayDeath, WriteWrongWidth)
{
    Array arr(8, 4);
    EXPECT_DEATH(arr.writeRow(0, BitRow(5)), "width");
}

} // namespace
