/**
 * @file
 * Unit tests of the runtime array-ownership race detector: the
 * Registry claim/release/check rules (live in every build), the
 * ClaimScope RAII nesting rules, and the Array access hook that turns
 * a cross-task touch into a deterministic abort (debug builds).
 */

#include <gtest/gtest.h>

#include <thread>

#include "cache/compute_cache.hh"
#include "common/thread_pool.hh"
#include "sram/array.hh"
#include "sram/ownership.hh"

namespace
{

using namespace nc;
namespace own = sram::ownership;

TEST(Ownership, UnclaimedAccessInSerialPhasesPasses)
{
    own::Registry reg(8);
    // No claims anywhere: pinning/readback-style access is fine.
    reg.checkAccess(0);
    reg.checkAccess(7);
    EXPECT_EQ(reg.arrays(), 8u);
}

TEST(Ownership, ClaimsAreReentrantAndReleaseRestoresNeutrality)
{
    own::Registry reg(8);
    reg.claim(2, 4, "outer kernel");
    reg.claim(3, 2, "inner kernel"); // same thread: nests, no abort
    reg.checkAccess(3);              // owned by us
    reg.release(3, 2);
    reg.checkAccess(3); // still owned through the outer claim
    reg.release(2, 4);

    // Fully released: another thread may now claim the same arrays.
    std::thread t([&] {
        reg.claim(2, 4, "next job");
        reg.checkAccess(4);
        reg.release(2, 4);
    });
    t.join();
}

TEST(Ownership, ClaimScopeWithNullRegistryOrEmptyRangeIsANoOp)
{
    own::Registry reg(8);
    {
        own::ClaimScope none(nullptr, own::Range{0, 4}, 0, "no reg");
        own::ClaimScope empty(&reg, own::Range{0, 0}, 0, "empty");
        own::ClaimScope hollow(&reg, std::vector<own::Range>{}, 0,
                               "no ranges");
    }
    // Nothing was claimed, so a foreign thread may take everything.
    std::thread t([&] {
        reg.claim(0, 8, "sweep");
        reg.release(0, 8);
    });
    t.join();
}

TEST(Ownership, OffsetDisplacesEveryRangeOfAScope)
{
    if (!own::kEnabled)
        GTEST_SKIP() << "detector compiled out under NDEBUG";
    own::Registry reg(16);
    std::vector<own::Range> rs = {{0, 2}, {5, 1}};
    {
        // The batch image-slot displacement: slot 1 of an 8-array
        // footprint claims [8, 10) and [13, 14).
        own::ClaimScope slot1(&reg, rs, 8, "image slot 1");
        reg.checkAccess(8);
        reg.checkAccess(13);
        // Slot 0's copies stay free for a sibling task.
        std::thread t([&] {
            own::ClaimScope slot0(&reg, rs, 0, "image slot 0");
            reg.checkAccess(0);
            reg.checkAccess(5);
        });
        t.join();
    }
}

TEST(OwnershipDeath, SiblingClaimOverlapAbortsAtClaimTime)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            own::Registry reg(8);
            std::thread t(
                [&] { reg.claim(0, 4, "conv filter store"); });
            t.join(); // claim deliberately left held
            reg.claim(2, 1, "eltwise merge kernel");
        },
        "array-ownership race.*eltwise merge kernel.*"
        "conv filter store");
}

TEST(OwnershipDeath, TouchingAnotherTasksArrayAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            own::Registry reg(8);
            std::thread t([&] { reg.claim(2, 1, "conv window"); });
            t.join(); // claim deliberately left held
            reg.checkAccess(2);
        },
        "array-ownership race on array 2.*owned by another task.*"
        "conv window");
}

TEST(OwnershipDeath, ClaimHoldersMayNotWanderOutsideTheirClaims)
{
    if (!own::kEnabled)
        GTEST_SKIP() << "detector compiled out under NDEBUG";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            own::Registry reg(8);
            own::ClaimScope scope(&reg, own::Range{0, 2}, 0,
                                  "maxPool kernel");
            reg.checkAccess(5); // unclaimed array, but we hold claims
        },
        "array-ownership race on array 5.*outside its claims");
}

TEST(OwnershipDeath, ArrayHookAbortsCrossTaskRowAccess)
{
    if (!own::kEnabled)
        GTEST_SKIP() << "detector compiled out under NDEBUG";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            cache::ComputeCache cc;
            sram::Array &arr = cc.array(cc.coordOf(0));
            std::thread t([&] {
                cc.ownershipRegistry()->claim(0, 1, "other kernel");
            });
            t.join(); // claim deliberately left held
            arr.opZero(3); // injected cross-task access
        },
        "array-ownership race on array 0");
}

TEST(Ownership, PoolTasksGetDistinctTokensFromThreadIdentity)
{
    if (!own::kEnabled)
        GTEST_SKIP() << "detector compiled out under NDEBUG";
    // Claims made inside pool tasks are owned by the TASK (not the
    // worker thread): after the join the claim's owner token can never
    // collide with a later task, and disjoint per-task claims within
    // one parallelFor coexist.
    own::Registry reg(16);
    common::ThreadPool pool(4);
    pool.parallelFor(8, [&](size_t i) {
        own::ClaimScope own_(&reg, own::Range{i * 2, 2}, 0,
                             "per-task slice");
        reg.checkAccess(i * 2);
        reg.checkAccess(i * 2 + 1);
    });
    // All released on task exit: the main thread can sweep everything.
    reg.claim(0, 16, "post-join sweep");
    reg.release(0, 16);
}

} // namespace
