/** @file Unit tests for sram::BitRow. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sram/bitrow.hh"

namespace
{

using nc::sram::BitRow;

TEST(BitRow, ConstructZeroed)
{
    BitRow r(256);
    EXPECT_EQ(r.width(), 256u);
    EXPECT_EQ(r.popcount(), 0u);
}

TEST(BitRow, ConstructFilled)
{
    BitRow r(100, true);
    EXPECT_EQ(r.popcount(), 100u);
}

TEST(BitRow, GetSet)
{
    BitRow r(70);
    r.set(0, true);
    r.set(69, true);
    EXPECT_TRUE(r.get(0));
    EXPECT_TRUE(r.get(69));
    EXPECT_FALSE(r.get(35));
    r.set(0, false);
    EXPECT_FALSE(r.get(0));
    EXPECT_EQ(r.popcount(), 1u);
}

TEST(BitRow, FillMasksTail)
{
    BitRow r(65);
    r.fill(true);
    EXPECT_EQ(r.popcount(), 65u);
    r.fill(false);
    EXPECT_EQ(r.popcount(), 0u);
}

TEST(BitRow, LogicOps)
{
    BitRow a(8), b(8);
    a.set(0, true);
    a.set(1, true);
    b.set(1, true);
    b.set(2, true);

    BitRow andv = a & b;
    BitRow orv = a | b;
    BitRow xorv = a ^ b;
    EXPECT_TRUE(andv.get(1));
    EXPECT_EQ(andv.popcount(), 1u);
    EXPECT_EQ(orv.popcount(), 3u);
    EXPECT_TRUE(xorv.get(0));
    EXPECT_TRUE(xorv.get(2));
    EXPECT_FALSE(xorv.get(1));
}

TEST(BitRow, NotMasksTail)
{
    BitRow a(65);
    BitRow n = ~a;
    EXPECT_EQ(n.popcount(), 65u); // tail bits beyond width stay 0
}

TEST(BitRow, Equality)
{
    BitRow a(16), b(16), c(17);
    EXPECT_TRUE(a == b);
    a.set(3, true);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitRow, ShiftedDown)
{
    BitRow a(8);
    a.set(4, true);
    a.set(7, true);
    BitRow s = a.shiftedDown(4);
    EXPECT_TRUE(s.get(0));
    EXPECT_TRUE(s.get(3));
    EXPECT_EQ(s.popcount(), 2u);
    // Vacated high lanes read zero.
    EXPECT_FALSE(s.get(4));
}

TEST(BitRow, ShiftedDownBeyondWidth)
{
    BitRow a(8, true);
    EXPECT_EQ(a.shiftedDown(8).popcount(), 0u);
}

TEST(BitRow, MergeFrom)
{
    BitRow dst(8), src(8, true), mask(8);
    mask.set(2, true);
    mask.set(5, true);
    dst.mergeFrom(src, mask);
    EXPECT_EQ(dst.popcount(), 2u);
    EXPECT_TRUE(dst.get(2));
    EXPECT_TRUE(dst.get(5));
}

TEST(BitRowDeath, OutOfRange)
{
    if (!nc::kDebugAsserts)
        GTEST_SKIP() << "per-lane asserts compile out in Release";
    BitRow r(8);
    EXPECT_DEATH(r.get(8), "lane");
    EXPECT_DEATH(r.set(100, true), "lane");
}

TEST(BitRowDeath, WidthMismatch)
{
    BitRow a(8), b(9);
    EXPECT_DEATH(a & b, "width mismatch");
}

/** Property: De Morgan holds lane-wise on random rows. */
class BitRowProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitRowProperty, DeMorgan)
{
    unsigned width = GetParam();
    nc::Rng rng(width);
    BitRow a(width), b(width);
    for (unsigned i = 0; i < width; ++i) {
        a.set(i, rng.uniformBits(1));
        b.set(i, rng.uniformBits(1));
    }
    EXPECT_TRUE((~(a & b)) == (~a | ~b));
    EXPECT_TRUE((~(a | b)) == (~a & ~b));
}

INSTANTIATE_TEST_SUITE_P(Widths, BitRowProperty,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 256));

} // namespace
