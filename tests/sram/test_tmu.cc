/** @file Unit tests for the Transpose Memory Unit. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sram/tmu.hh"

namespace
{

using nc::sram::BitRow;
using nc::sram::TransposeUnit;

TEST(Tmu, RegularRoundTrip)
{
    TransposeUnit tmu(16, 8);
    tmu.writeRegular(3, 0xa5);
    EXPECT_EQ(tmu.readRegular(3), 0xa5u);
}

TEST(Tmu, TwoAxisAccessTransposes)
{
    TransposeUnit tmu(8, 8);
    // Element i = 1 << i: column j then holds exactly bit of elem j.
    for (unsigned i = 0; i < 8; ++i)
        tmu.writeRegular(i, uint64_t(1) << i);
    for (unsigned c = 0; c < 8; ++c) {
        BitRow slice = tmu.readTransposed(c);
        EXPECT_EQ(slice.popcount(), 1u);
        EXPECT_TRUE(slice.get(c));
    }
}

TEST(Tmu, TransposedWriteReadBack)
{
    TransposeUnit tmu(8, 8);
    BitRow slice(8);
    slice.set(1, true);
    slice.set(6, true);
    tmu.writeTransposed(5, slice);
    EXPECT_TRUE(tmu.readTransposed(5) == slice);
    // Element views see bit 5 set in slots 1 and 6.
    EXPECT_EQ(tmu.readRegular(1), 1u << 5);
    EXPECT_EQ(tmu.readRegular(6), 1u << 5);
}

TEST(Tmu, AccessCyclesCounted)
{
    TransposeUnit tmu(8, 8);
    tmu.writeRegular(0, 1);
    tmu.readRegular(0);
    tmu.readTransposed(0);
    EXPECT_EQ(tmu.accessCycles(), 3u);
    tmu.resetCycles();
    EXPECT_EQ(tmu.accessCycles(), 0u);
}

TEST(Tmu, StreamCyclesPipelined)
{
    TransposeUnit tmu(256, 64);
    EXPECT_EQ(tmu.streamCycles(0, 8), 0u);
    // One batch of 256 8-bit elements: fill 256x8/64 = 32 cycles,
    // drain 8 bit-slices -> 32 + 8.
    EXPECT_EQ(tmu.streamCycles(256, 8), 40u);
    // Two batches pipeline at 32 cycles each.
    EXPECT_EQ(tmu.streamCycles(512, 8), 72u);
    // Partial batch still pays a full fill.
    EXPECT_EQ(tmu.streamCycles(10, 8), 40u);
    // Wide elements make the drain port the bottleneck.
    EXPECT_EQ(tmu.streamCycles(256, 64), 256u + 64u);
}

TEST(Tmu, TransposeElementsRoundTrip)
{
    nc::Rng rng(42);
    auto elems = rng.bitVector(100, 8);
    auto slices = TransposeUnit::transposeElements(elems, 8, 256);
    ASSERT_EQ(slices.size(), 8u);
    EXPECT_EQ(slices[0].width(), 256u);

    auto back = TransposeUnit::untransposeElements(slices, 8);
    ASSERT_EQ(back.size(), 256u);
    for (size_t i = 0; i < elems.size(); ++i)
        EXPECT_EQ(back[i], elems[i]);
    for (size_t i = elems.size(); i < back.size(); ++i)
        EXPECT_EQ(back[i], 0u);
}

TEST(Tmu, TransposeElementsBitPlacement)
{
    std::vector<uint64_t> elems{0b01, 0b10};
    auto slices = TransposeUnit::transposeElements(elems, 2, 4);
    EXPECT_TRUE(slices[0].get(0));
    EXPECT_FALSE(slices[0].get(1));
    EXPECT_FALSE(slices[1].get(0));
    EXPECT_TRUE(slices[1].get(1));
}

TEST(TmuDeath, Bounds)
{
    TransposeUnit tmu(8, 8);
    EXPECT_DEATH(tmu.writeRegular(8, 0), "row");
    EXPECT_DEATH(tmu.readTransposed(8), "col");
}

TEST(TmuDeath, TooManyElements)
{
    std::vector<uint64_t> elems(300, 1);
    EXPECT_DEATH(TransposeUnit::transposeElements(elems, 8, 256),
                 "exceed");
}

} // namespace
