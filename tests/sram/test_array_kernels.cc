/**
 * @file
 * Differential property suite for the word-parallel Array kernels.
 *
 * Every Array::op* has two implementations: the fused word-level fast
 * path and the bit-by-bit reference path (setReferenceMode). These
 * tests drive both with identical stimulus — every runnable SIMD
 * dispatch tier (pinned with forceTier), all ops, predication on and
 * off, widths that are not multiples of 64 — and require bit-exact
 * agreement of every row, both latches, and both cycle counters
 * after every step. The transposed storeVector/loadVector fast paths
 * are pinned the same way.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "bitserial/layout.hh"
#include "common/rng.hh"
#include "sram/array.hh"
#include "sram/kernels.hh"

namespace
{

using nc::Rng;
using nc::common::simd::Tier;
using nc::sram::Array;

constexpr unsigned kRows = 16;

class KernelDiff
    : public ::testing::TestWithParam<std::tuple<Tier, unsigned>>
{
  protected:
    void
    SetUp() override
    {
        // Pin this case's dispatch tier; TearDown restores the
        // previous one so later suites in the same process see the
        // normal NC_SIMD/CPUID resolution. The reference array runs
        // the bit-by-bit path regardless of tier, so every tier's
        // kernels are pinned against tier-independent semantics.
        prev = nc::sram::kern::activeTier();
        nc::sram::kern::forceTier(std::get<0>(GetParam()));
        unsigned cols = this->cols();
        fast = std::make_unique<Array>(kRows, cols);
        ref = std::make_unique<Array>(kRows, cols);
        ref->setReferenceMode(true);

        Rng rng(0xC0FFEEu ^ cols);
        for (unsigned r = 0; r < kRows; ++r) {
            for (unsigned lane = 0; lane < cols; ++lane) {
                bool v = rng.uniformBits(1) != 0;
                fast->poke(r, lane, v);
                ref->poke(r, lane, v);
            }
        }
        // Scramble both latches with data-dependent (hence per-lane
        // random) patterns, through the ops themselves.
        both([](Array &a) {
            a.carrySet(false);
            a.opAdd(0, 1, 2);       // carry <- majority(r0, r1, 0)
            a.opLoadTag(3);         // tag <- r3
        });
    }

    void
    TearDown() override
    {
        nc::sram::kern::forceTier(prev);
    }

    template <class F>
    void
    both(F f)
    {
        f(*fast);
        f(*ref);
    }

    void
    expectSame(const char *what)
    {
        for (unsigned r = 0; r < kRows; ++r) {
            EXPECT_TRUE(fast->rowRef(r) == ref->rowRef(r))
                << what << ": row " << r << " diverged (cols "
                << cols() << ", tier "
                << nc::common::simd::tierName(std::get<0>(GetParam()))
                << ")";
        }
        EXPECT_TRUE(fast->carry() == ref->carry())
            << what << ": carry latch diverged";
        EXPECT_TRUE(fast->tag() == ref->tag())
            << what << ": tag latch diverged";
        EXPECT_EQ(fast->computeCycles(), ref->computeCycles())
            << what << ": compute cycle drift";
        EXPECT_EQ(fast->accessCycles(), ref->accessCycles())
            << what << ": access cycle drift";
    }

    unsigned cols() const { return std::get<1>(GetParam()); }

    std::unique_ptr<Array> fast, ref;
    Tier prev = Tier::Scalar;
};

TEST_P(KernelDiff, LogicOps)
{
    for (bool pred : {false, true}) {
        both([&](Array &a) {
            a.opAnd(0, 1, 4, pred);
            a.opNor(1, 2, 5, pred);
            a.opOr(2, 3, 6, pred);
            a.opXor(3, 4, 7, pred);
            a.opXnor(4, 5, 8, pred);
        });
        expectSame(pred ? "logic pred" : "logic");
    }
}

TEST_P(KernelDiff, AddUpdatesSumAndCarry)
{
    for (bool pred : {false, true}) {
        both([&](Array &a) {
            a.opAdd(0, 1, 9, pred);
            a.opAdd(2, 3, 9, pred);  // chained carry
            a.opAdd(9, 4, 9, pred);  // dst aliases an operand
        });
        expectSame(pred ? "add pred" : "add");
    }
}

TEST_P(KernelDiff, CopyZeroOnes)
{
    for (bool pred : {false, true}) {
        both([&](Array &a) {
            a.opCopy(0, 10, pred);
            a.opCopyInv(1, 11, pred);
            a.opZero(12, pred);
            a.opOnes(13, pred);
        });
        expectSame(pred ? "copy pred" : "copy");
    }
}

TEST_P(KernelDiff, TagFamily)
{
    both([&](Array &a) {
        a.opLoadTag(0);
        a.opTagAnd(1);
        a.opTagOr(2);
        a.opTagAndInv(3);
        a.opLoadTagInv(4);
        a.opTagAndXnor(5, 6);
        a.opLoadTagFromCarry(false);
        a.opLoadTagFromCarry(true);
        a.opStoreTag(14);
        a.opStoreCarry(15);
        a.opStoreTag(14, /*pred=*/true);
        a.opStoreCarry(15, /*pred=*/true);
    });
    expectSame("tag family");
}

TEST_P(KernelDiff, LaneShift)
{
    unsigned cols = this->cols();
    for (unsigned shift : {0u, 1u, 7u, 63u, 64u, 65u, cols - 1, cols,
                           cols + 3}) {
        both([&](Array &a) { a.opLaneShift(0, 10, shift); });
        expectSame("lane shift");
        // Pin the funnel shift against the semantic definition, not
        // just against the other implementation.
        for (unsigned i = 0; i < cols; ++i) {
            bool want = i + shift < cols && fast->peek(0, i + shift);
            EXPECT_EQ(fast->peek(10, i), want)
                << "shift " << shift << " lane " << i;
        }
    }
    // In-place shift (dst == src).
    Array before = *fast;
    both([&](Array &a) { a.opLaneShift(11, 11, 5); });
    expectSame("lane shift in place");
    for (unsigned i = 0; i < cols; ++i) {
        bool want = i + 5 < cols && before.peek(11, i + 5);
        EXPECT_EQ(fast->peek(11, i), want) << "in-place lane " << i;
    }
}

TEST_P(KernelDiff, RandomOpSoup)
{
    // A few hundred randomly chosen ops with random operands: the two
    // paths must stay in lock-step the whole way.
    Rng rng(0x5eed ^ cols());
    for (unsigned step = 0; step < 300; ++step) {
        unsigned op = static_cast<unsigned>(rng.uniformInt(0, 12));
        unsigned ra = static_cast<unsigned>(
            rng.uniformInt(0, kRows - 1));
        unsigned rb = static_cast<unsigned>(
            rng.uniformInt(0, kRows - 1));
        if (rb == ra)
            rb = (ra + 1) % kRows;
        unsigned dst = static_cast<unsigned>(
            rng.uniformInt(0, kRows - 1));
        bool pred = rng.uniformBits(1) != 0;
        unsigned shift = static_cast<unsigned>(
            rng.uniformInt(0, cols()));
        both([&](Array &a) {
            switch (op) {
              case 0: a.opAnd(ra, rb, dst, pred); break;
              case 1: a.opNor(ra, rb, dst, pred); break;
              case 2: a.opOr(ra, rb, dst, pred); break;
              case 3: a.opXor(ra, rb, dst, pred); break;
              case 4: a.opXnor(ra, rb, dst, pred); break;
              case 5: a.opAdd(ra, rb, dst, pred); break;
              case 6: a.opCopy(ra, dst, pred); break;
              case 7: a.opCopyInv(ra, dst, pred); break;
              case 8: a.opLoadTag(ra); break;
              case 9: a.opTagAnd(ra); break;
              case 10: a.opLoadTagFromCarry(pred); break;
              case 11: a.opStoreCarry(dst, pred); break;
              case 12: a.opLaneShift(ra, dst, shift); break;
            }
        });
    }
    expectSame("op soup");
}

TEST_P(KernelDiff, TransposedStoreLoadRoundTrip)
{
    unsigned cols = this->cols();
    Rng rng(0xAB1E ^ cols);
    for (unsigned bits : {1u, 7u, 8u, 13u, 64u}) {
        if (bits > kRows)
            continue;
        nc::bitserial::VecSlice slice{0, bits};
        std::vector<uint64_t> values(
            static_cast<size_t>(rng.uniformInt(0, cols)));
        for (auto &v : values)
            v = rng.uniformBits(bits);

        nc::bitserial::storeVector(*fast, slice, values);
        nc::bitserial::storeVector(*ref, slice, values);
        expectSame("storeVector");

        auto got = nc::bitserial::loadVector(*fast, slice);
        auto want = nc::bitserial::loadVector(*ref, slice);
        EXPECT_EQ(got, want) << "loadVector diverged, bits " << bits;
        ASSERT_EQ(got.size(), cols);
        for (size_t i = 0; i < values.size(); ++i)
            EXPECT_EQ(got[i], values[i]) << "lane " << i;
        for (size_t i = values.size(); i < cols; ++i)
            EXPECT_EQ(got[i], 0u) << "pad lane " << i;
        for (unsigned lane = 0; lane < cols; ++lane) {
            EXPECT_EQ(nc::bitserial::loadLane(*fast, slice, lane),
                      got[lane]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    TiersXWidths, KernelDiff,
    ::testing::Combine(
        ::testing::ValuesIn(nc::sram::kern::availableTiers()),
        ::testing::Values(1u, 3u, 37u, 64u, 65u, 127u, 128u, 200u,
                          256u)),
    [](const ::testing::TestParamInfo<KernelDiff::ParamType> &info) {
        return std::string(nc::common::simd::tierName(
                   std::get<0>(info.param))) +
               "_w" + std::to_string(std::get<1>(info.param));
    });

} // namespace
