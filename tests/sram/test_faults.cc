/**
 * @file
 * Fault-injection registry semantics: deterministic fault-site
 * decisions, sense-time application at the checkRow funnel, strict
 * NC_FAULTS parsing, and the zero-overhead identity of record-less
 * arrays.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sram/array.hh"
#include "sram/faults.hh"

namespace
{

using namespace nc;
using sram::Array;
namespace flt = nc::sram::faults;

TEST(FaultConfig, EnabledOnlyWhenAFaultSourceIsSet)
{
    flt::Config cfg;
    EXPECT_FALSE(cfg.enabled()); // seed/bist/canary alone arm nothing

    flt::Config stuck;
    stuck.stuckRate = 0.1;
    EXPECT_TRUE(stuck.enabled());

    flt::Config killed;
    killed.killArrays = {3};
    EXPECT_TRUE(killed.enabled());

    flt::Config cell;
    cell.stuckCells = {{0, {1, 2, true}}};
    EXPECT_TRUE(cell.enabled());
}

TEST(FaultRegistry, SameSeedSameCampaignAcrossRegistries)
{
    flt::Config cfg;
    cfg.seed = 42;
    cfg.killRate = 0.3;
    cfg.stuckRate = 0.3;
    flt::Registry a(cfg, 64, 16, 32), b(cfg, 64, 16, 32);
    ASSERT_GT(a.staticFaultCount(), 0u);
    EXPECT_EQ(a.staticFaultCount(), b.staticFaultCount());
    for (uint64_t i = 0; i < 64; ++i) {
        const flt::ArrayFaults *ra = a.recordFor(i);
        const flt::ArrayFaults *rb = b.recordFor(i);
        ASSERT_EQ(ra == nullptr, rb == nullptr) << "array " << i;
        if (!ra)
            continue;
        EXPECT_EQ(ra->killed(), rb->killed()) << "array " << i;
        ASSERT_EQ(ra->stuck().size(), rb->stuck().size());
        for (size_t s = 0; s < ra->stuck().size(); ++s) {
            EXPECT_EQ(ra->stuck()[s].row, rb->stuck()[s].row);
            EXPECT_EQ(ra->stuck()[s].lane, rb->stuck()[s].lane);
            EXPECT_EQ(ra->stuck()[s].value, rb->stuck()[s].value);
        }
    }

    // A different seed draws a different campaign.
    flt::Config other = cfg;
    other.seed = 43;
    flt::Registry c(other, 64, 16, 32);
    bool differs = a.staticFaultCount() != c.staticFaultCount();
    for (uint64_t i = 0; !differs && i < 64; ++i) {
        const flt::ArrayFaults *ra = a.recordFor(i);
        const flt::ArrayFaults *rc = c.recordFor(i);
        differs = (ra == nullptr) != (rc == nullptr) ||
                  (ra && rc && ra->killed() != rc->killed());
    }
    EXPECT_TRUE(differs);
}

TEST(FaultArray, DeadArraySensesDeterministicGarbage)
{
    flt::Config cfg;
    flt::Registry reg(cfg, 4, 8, 32);
    reg.killArray(2);
    Array arr(8, 32);
    arr.setFaults(reg.recordFor(2));
    EXPECT_NE(arr.rowRef(0).popcount(), 0u); // zeroed cells lie

    // The garbage is stable per (array, row, word): a second
    // identically-configured pair senses the same bits.
    flt::Registry reg2(cfg, 4, 8, 32);
    reg2.killArray(2);
    Array arr2(8, 32);
    arr2.setFaults(reg2.recordFor(2));
    const sram::BitRow &r = arr.rowRef(3);
    const sram::BitRow &r2 = arr2.rowRef(3);
    for (size_t w = 0; w < r.wordCount(); ++w)
        EXPECT_EQ(r.word(w), r2.word(w)) << "word " << w;
}

TEST(FaultArray, StuckCellClampsOnEveryTouch)
{
    flt::Config cfg;
    flt::Registry reg(cfg, 2, 8, 32);
    reg.addStuck(0, 3, 5, true);
    reg.addStuck(1, 1, 2, false);

    Array hi(8, 32);
    hi.setFaults(reg.recordFor(0));
    hi.rowMut(3) = sram::BitRow(32); // write all-zero
    EXPECT_TRUE(hi.peek(3, 5));      // clamps at sense
    EXPECT_FALSE(hi.peek(3, 4));     // neighbors untouched

    Array lo(8, 32);
    lo.setFaults(reg.recordFor(1));
    lo.poke(1, 2, true); // the cell cannot hold a one
    EXPECT_FALSE(lo.peek(1, 2));
}

TEST(FaultArray, PendingFlipAppliesExactlyOnce)
{
    flt::Config cfg;
    flt::Registry reg(cfg, 1, 8, 32);
    reg.injectFlip(0, 2, 7);
    Array arr(8, 32);
    arr.setFaults(reg.recordFor(0));
    EXPECT_TRUE(arr.peek(2, 7));  // applied at the first touch
    EXPECT_TRUE(arr.peek(2, 7));  // not re-flipped on later touches
    EXPECT_EQ(arr.rowRef(2).popcount(), 1u);
    EXPECT_EQ(arr.rowRef(1).popcount(), 0u); // other rows untouched
}

TEST(FaultArray, TransientRateOneFlipsOneBitPerTouch)
{
    flt::Config cfg;
    cfg.transientRate = 1.0;
    flt::Registry reg(cfg, 1, 8, 32);
    Array arr(8, 32);
    arr.setFaults(reg.recordFor(0));
    EXPECT_EQ(arr.rowRef(0).popcount(), 1u);
}

TEST(FaultArray, RecordlessArrayBehavesIdentically)
{
    // A registry is armed, but this array drew no defects: its record
    // is null and behavior must be bit-identical to a fault-free
    // array.
    flt::Config cfg;
    flt::Registry reg(cfg, 2, 8, 32);
    reg.killArray(0);
    ASSERT_EQ(reg.recordFor(1), nullptr);

    Array ideal(8, 32), hooked(8, 32);
    hooked.setFaults(reg.recordFor(1));
    for (unsigned r = 0; r < 8; ++r)
        for (unsigned l = 0; l < 32; l += 3) {
            ideal.poke(r, l, true);
            hooked.poke(r, l, true);
        }
    for (unsigned r = 0; r < 8; ++r)
        for (size_t w = 0; w < ideal.rowRef(r).wordCount(); ++w)
            EXPECT_EQ(ideal.rowRef(r).word(w),
                      hooked.rowRef(r).word(w));
}

TEST(FaultEnv, OverlaysEveryKeyAndToleratesEmptyItems)
{
    setenv("NC_FAULTS",
           "seed=0x5,stuck=0.25,transient=0.5,kill=1,,"
           "kill_list=1:2:3,bist=0,canary=0,retries=7,",
           1);
    flt::Config cfg = flt::configFromEnv();
    EXPECT_EQ(cfg.seed, 5u);
    EXPECT_DOUBLE_EQ(cfg.stuckRate, 0.25);
    EXPECT_DOUBLE_EQ(cfg.transientRate, 0.5);
    EXPECT_DOUBLE_EQ(cfg.killRate, 1.0);
    ASSERT_EQ(cfg.killArrays.size(), 3u);
    EXPECT_EQ(cfg.killArrays[0], 1u);
    EXPECT_EQ(cfg.killArrays[2], 3u);
    EXPECT_FALSE(cfg.bist);
    EXPECT_FALSE(cfg.canary);
    EXPECT_EQ(cfg.retryBudget, 7u);
    unsetenv("NC_FAULTS");

    // Without the variable the base passes through untouched.
    flt::Config base;
    base.stuckRate = 0.125;
    EXPECT_DOUBLE_EQ(flt::configFromEnv(base).stuckRate, 0.125);
}

using FaultEnvDeath = ::testing::Test;

TEST(FaultEnvDeath, MalformedCampaignsDieLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    struct Case
    {
        const char *value;
        const char *expect;
    } cases[] = {
        {"stuk=0.5", "did you mean 'stuck'"},
        {"retrys=3", "did you mean 'retries'"},
        {"stuck=1.5", "outside"},
        {"stuck=abc", "not a number"},
        {"retries", "not key=value"},
        {"=3", "not key=value"},
        {"bist=2", "must be 0 or 1"},
        {"seed=12junk", "not an integer"},
    };
    for (const auto &[value, expect] : cases) {
        setenv("NC_FAULTS", value, 1);
        EXPECT_DEATH((void)flt::configFromEnv(), expect)
            << "NC_FAULTS='" << value << "'";
    }
    unsetenv("NC_FAULTS");
}

} // namespace
