/** @file Tests for the calibrated CPU/GPU baseline models. */

#include <numeric>

#include <gtest/gtest.h>

#include "baselines/device_model.hh"
#include "dnn/inception_v3.hh"

namespace
{

using namespace nc::baselines;

class Baselines : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        net = new nc::dnn::Network(nc::dnn::inceptionV3());
    }

    static void
    TearDownTestSuite()
    {
        delete net;
        net = nullptr;
    }

    static nc::dnn::Network *net;
};

nc::dnn::Network *Baselines::net = nullptr;

TEST_F(Baselines, CpuCalibratedTo86ms)
{
    auto cpu = DeviceModel::xeonE5_2697v3(*net);
    EXPECT_NEAR(cpu.totalLatencyMs(*net), 86.0, 0.01);
}

TEST_F(Baselines, GpuCalibratedToPaperRatio)
{
    auto gpu = DeviceModel::titanXp(*net);
    EXPECT_NEAR(gpu.totalLatencyMs(*net), 86.0 / 18.3 * 7.7, 0.05);
}

TEST_F(Baselines, StageLatenciesSumToTotal)
{
    auto cpu = DeviceModel::xeonE5_2697v3(*net);
    auto per_stage = cpu.stageLatenciesMs(*net);
    ASSERT_EQ(per_stage.size(), net->stages.size());
    double sum =
        std::accumulate(per_stage.begin(), per_stage.end(), 0.0);
    EXPECT_NEAR(sum, cpu.totalLatencyMs(*net), 1e-6);
}

TEST_F(Baselines, MixedLayersDominateCpuTime)
{
    // Figure 13: "A majority of time is spent on the mixed layers for
    // both CPU and GPU."
    auto cpu = DeviceModel::xeonE5_2697v3(*net);
    auto per_stage = cpu.stageLatenciesMs(*net);
    double mixed = 0, total = 0;
    for (size_t i = 0; i < net->stages.size(); ++i) {
        total += per_stage[i];
        if (net->stages[i].name.rfind("Mixed", 0) == 0)
            mixed += per_stage[i];
    }
    EXPECT_GT(mixed / total, 0.5);
}

TEST_F(Baselines, EnergyMatchesTableIII)
{
    // Table III: CPU 9.137 J, GPU 4.087 J.
    auto cpu = DeviceModel::xeonE5_2697v3(*net);
    auto gpu = DeviceModel::titanXp(*net);
    EXPECT_NEAR(cpu.energyJ(*net), 9.137, 0.15);
    EXPECT_NEAR(gpu.energyJ(*net), 4.087, 0.1);
}

TEST_F(Baselines, RooflineRespectsComputeAndMemoryWalls)
{
    DeviceModel::Params p;
    p.name = "toy";
    p.peakFlops = 1e12;
    p.memBwBytesPerSec = 1e11;
    p.computeEfficiency = 1.0;
    p.memEfficiency = 1.0;
    DeviceModel m(p);

    // Compute-bound op: high flops per byte.
    auto heavy = nc::dnn::conv("h", 32, 32, 256, 3, 3, 256);
    double t = m.opLatencyPs(heavy);
    double flop_time = double(heavy.conv.flops()) / 1e12 * 1e12;
    EXPECT_GE(t, flop_time);

    // Memory-bound op: 1x1 with huge channel count, tiny map.
    auto light = nc::dnn::conv("l", 2, 2, 2048, 1, 1, 16);
    double bytes =
        double(light.conv.inputBytes() + light.conv.filterBytes() +
               light.conv.outputBytes()) *
        4.0;
    double mem_time = bytes / 1e11 * 1e12;
    EXPECT_GE(m.opLatencyPs(light), mem_time);
}

TEST_F(Baselines, BatchCurveFitsEndpoints)
{
    // CPU: 86 ms batch-1, peak 48.7 inf/s (= 604 / 12.4).
    BatchCurve cpu = BatchCurve::fit(86.0, 604.0 / 12.4);
    EXPECT_NEAR(cpu.throughput(1), 1000.0 / 86.0, 0.01);
    EXPECT_NEAR(cpu.throughput(1e9), 48.7, 0.1);
    // Monotone non-decreasing in n.
    double prev = 0;
    for (double n : {1.0, 2.0, 4.0, 16.0, 64.0, 256.0}) {
        double thr = cpu.throughput(n);
        EXPECT_GE(thr, prev);
        prev = thr;
    }
}

TEST_F(Baselines, GpuBatchCurvePlateausNearPaper)
{
    // GPU: 36.2 ms batch-1, peak 274.5 inf/s (= 604 / 2.2).
    BatchCurve gpu = BatchCurve::fit(86.0 / 18.3 * 7.7, 604.0 / 2.2);
    EXPECT_NEAR(gpu.throughput(256), 274.5, 30.0);
    EXPECT_LT(gpu.throughput(64) / gpu.throughput(256), 1.0);
}

TEST(BatchCurveDeath, RejectsImpossibleFit)
{
    // Batch-1 throughput above the peak cannot be fitted.
    EXPECT_DEATH(BatchCurve::fit(1.0, 10.0), "exceeds");
}

TEST_F(Baselines, CalibrationScaleIsFinitePositive)
{
    auto cpu = DeviceModel::xeonE5_2697v3(*net);
    EXPECT_GT(cpu.calibrationScale(), 0.0);
    auto gpu = DeviceModel::titanXp(*net);
    EXPECT_GT(gpu.calibrationScale(), 0.0);
}

} // namespace
