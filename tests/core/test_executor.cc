/** @file Functional executor vs reference ground truth. */

#include <gtest/gtest.h>

#include "bitserial/cost.hh"
#include "common/rng.hh"
#include "core/executor.hh"

namespace
{

using namespace nc;
using core::Executor;
using dnn::QTensor;
using dnn::QWeights;

QTensor
randomInput(Rng &rng, unsigned c, unsigned h, unsigned w)
{
    QTensor t(c, h, w);
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

QWeights
randomWeights(Rng &rng, unsigned m, unsigned c, unsigned r, unsigned s)
{
    QWeights w(m, c, r, s);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

TEST(Executor, OneByOneConvSingleChannel)
{
    cache::ComputeCache cc;
    Executor ex(cc);
    QTensor in(1, 2, 2);
    in.at(0, 0, 0) = 3;
    in.at(0, 1, 1) = 7;
    QWeights w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = 5;

    unsigned oh, ow;
    auto acc = ex.conv(in, w, 1, true, oh, ow);
    EXPECT_EQ(oh, 2u);
    EXPECT_EQ(acc[0], 15u);
    EXPECT_EQ(acc[3], 35u);
}

TEST(Executor, ConvMatchesReferenceExactly)
{
    Rng rng(1234);
    cache::ComputeCache cc;
    Executor ex(cc);

    QTensor in = randomInput(rng, 8, 6, 6);
    QWeights w = randomWeights(rng, 3, 8, 3, 3);

    unsigned oh1, ow1, oh2, ow2;
    auto got = ex.conv(in, w, 1, true, oh1, ow1);
    auto want = dnn::convQuantUnsigned(in, w, 1, true, oh2, ow2);
    ASSERT_EQ(oh1, oh2);
    ASSERT_EQ(ow1, ow2);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "index " << i;
}

TEST(Executor, StridedValidConvMatchesReference)
{
    Rng rng(99);
    cache::ComputeCache cc;
    Executor ex(cc);

    QTensor in = randomInput(rng, 5, 9, 9);
    QWeights w = randomWeights(rng, 2, 5, 3, 3);

    unsigned oh1, ow1, oh2, ow2;
    auto got = ex.conv(in, w, 2, false, oh1, ow1);
    auto want = dnn::convQuantUnsigned(in, w, 2, false, oh2, ow2);
    ASSERT_EQ(oh1, 4u);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "index " << i;
}

TEST(Executor, NonPow2ChannelsArePadded)
{
    Rng rng(55);
    cache::ComputeCache cc;
    Executor ex(cc);

    QTensor in = randomInput(rng, 7, 4, 4); // pads to 8 lanes
    QWeights w = randomWeights(rng, 2, 7, 1, 1);

    unsigned oh1, ow1, oh2, ow2;
    auto got = ex.conv(in, w, 1, true, oh1, ow1);
    auto want = dnn::convQuantUnsigned(in, w, 1, true, oh2, ow2);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "index " << i;
}

TEST(Executor, AsymmetricFilterMatchesReference)
{
    Rng rng(77);
    cache::ComputeCache cc;
    Executor ex(cc);

    QTensor in = randomInput(rng, 4, 5, 5);
    QWeights w = randomWeights(rng, 2, 4, 1, 3); // 1x3 tap

    unsigned oh1, ow1, oh2, ow2;
    auto got = ex.conv(in, w, 1, true, oh1, ow1);
    auto want = dnn::convQuantUnsigned(in, w, 1, true, oh2, ow2);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "index " << i;
}

TEST(Executor, ConvConsumesComputeCycles)
{
    Rng rng(3);
    cache::ComputeCache cc;
    Executor ex(cc);
    QTensor in = randomInput(rng, 4, 3, 3);
    QWeights w = randomWeights(rng, 1, 4, 3, 3);
    unsigned oh, ow;
    ex.conv(in, w, 1, true, oh, ow);
    // 9 outputs x (9 MACs + zeroing + reduction) each.
    uint64_t per_window =
        bitserial::implCopyCycles(26) +
        9 * bitserial::implMacScratchCycles(8, 24) +
        bitserial::implReduceSumCycles(24, 4, 2);
    EXPECT_EQ(ex.lockstepCycles(), 9 * per_window);
}

TEST(Executor, MaxPoolMatchesReference)
{
    Rng rng(21);
    cache::ComputeCache cc;
    Executor ex(cc);
    QTensor in = randomInput(rng, 6, 6, 6);

    auto got = ex.maxPool(in, 3, 3, 2, false);
    auto want = dnn::maxPoolQuant(in, 3, 3, 2, false);
    ASSERT_EQ(got.height(), want.height());
    for (unsigned c = 0; c < 6; ++c)
        for (unsigned y = 0; y < got.height(); ++y)
            for (unsigned x = 0; x < got.width(); ++x)
                EXPECT_EQ(got.at(c, y, x), want.at(c, y, x));
}

TEST(Executor, ReluMatchesSignedClamp)
{
    cache::ComputeCache cc;
    Executor ex(cc);
    std::vector<uint8_t> vals{0, 1, 127, 128, 200, 255};
    auto out = ex.relu(vals);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
    EXPECT_EQ(out[2], 127);
    EXPECT_EQ(out[3], 0); // -128 clamps
    EXPECT_EQ(out[4], 0);
    EXPECT_EQ(out[5], 0); // -1 clamps
}

TEST(Executor, MultipleMsSpreadAcrossArrays)
{
    Rng rng(8);
    cache::ComputeCache cc;
    Executor ex(cc);
    QTensor in = randomInput(rng, 4, 3, 3);
    QWeights w = randomWeights(rng, 4, 4, 3, 3);
    unsigned oh, ow;
    ex.conv(in, w, 1, true, oh, ow);
    EXPECT_EQ(cc.materializedCount(), 4u);
}

} // namespace
