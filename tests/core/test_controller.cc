/** @file Tests for the in-cache ISA and broadcast controller. */

#include <gtest/gtest.h>

#include "bitserial/cost.hh"
#include "common/rng.hh"
#include "core/controller.hh"

namespace
{

using namespace nc;
using core::Controller;
using core::Instruction;
using core::Opcode;
namespace bs = bitserial;

struct Rig
{
    cache::ComputeCache cc;
    Controller ctrl{cc};
    bs::RowAllocator rows{256};
};

TEST(Isa, OpcodeNamesCoverEveryOpcode)
{
    for (int i = 0; i <= static_cast<int>(Opcode::LoadTag); ++i) {
        const char *name = core::opcodeName(static_cast<Opcode>(i));
        EXPECT_STRNE(name, "?") << "opcode " << i;
    }
}

TEST(Controller, BroadcastKeepsGroupInLockstep)
{
    Rig rig;
    for (unsigned i = 0; i < 8; ++i)
        rig.ctrl.enroll(rig.cc.coordOf(i * 17));
    EXPECT_EQ(rig.ctrl.groupSize(), 8u);

    bs::VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    bs::VecSlice out = rig.rows.alloc(9);

    // Different data per array, identical instruction stream.
    Rng rng(5);
    for (unsigned i = 0; i < 8; ++i) {
        auto &arr = rig.cc.array(rig.cc.coordOf(i * 17));
        bs::storeVector(arr, a, rng.bitVector(256, 8));
        bs::storeVector(arr, b, rng.bitVector(256, 8));
    }

    uint64_t cycles = rig.ctrl.broadcast(Instruction::add(a, b, out));
    EXPECT_EQ(cycles, bs::implAddCycles(8, true));
    EXPECT_EQ(rig.cc.lockstepCycles(), cycles);
    // Every array consumed exactly the broadcast cycles.
    EXPECT_EQ(rig.cc.totalComputeCycles(), cycles * 8);
}

TEST(Controller, ProgramComputesAffineExpression)
{
    // (a + b) * c on two arrays with different data.
    Rig rig;
    rig.ctrl.enroll(rig.cc.coordOf(0));
    rig.ctrl.enroll(rig.cc.coordOf(320));

    bs::VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    bs::VecSlice c = rig.rows.alloc(8);
    bs::VecSlice sum = rig.rows.alloc(8);
    bs::VecSlice prod = rig.rows.alloc(16);

    auto &a0 = rig.cc.array(rig.cc.coordOf(0));
    auto &a1 = rig.cc.array(rig.cc.coordOf(320));
    bs::storeVector(a0, a, {10, 3});
    bs::storeVector(a0, b, {5, 4});
    bs::storeVector(a0, c, {2, 10});
    bs::storeVector(a1, a, {100, 0});
    bs::storeVector(a1, b, {1, 0});
    bs::storeVector(a1, c, {2, 9});

    std::vector<Instruction> prog{
        Instruction::add(a, b, sum),
        Instruction::multiply(sum, c, prod),
    };
    uint64_t total = rig.ctrl.run(prog);
    EXPECT_EQ(total, rig.ctrl.cyclesIssued());

    EXPECT_EQ(bs::loadLane(a0, prod, 0), 30u);  // (10+5)*2
    EXPECT_EQ(bs::loadLane(a0, prod, 1), 70u);  // (3+4)*10
    EXPECT_EQ(bs::loadLane(a1, prod, 0), 202u); // (100+1)*2
    EXPECT_EQ(bs::loadLane(a1, prod, 1), 0u);
}

TEST(Controller, ReduceAndSearchDecodeCorrectly)
{
    Rig rig;
    rig.ctrl.enroll(rig.cc.coordOf(0));
    auto &arr = rig.cc.array(rig.cc.coordOf(0));

    bs::VecSlice acc = rig.rows.alloc(10);
    bs::VecSlice scratch = rig.rows.alloc(9);
    bs::storeVector(arr, acc, {1, 2, 3, 4});
    rig.ctrl.broadcast(Instruction::reduceSum(acc, 8, 4, scratch));
    EXPECT_EQ(bs::loadLane(arr, acc, 0), 10u);

    bs::VecSlice keys = rig.rows.alloc(8);
    bs::storeVector(arr, keys, {9, 7, 9});
    rig.ctrl.broadcast(Instruction::search(keys, 9));
    EXPECT_TRUE(arr.tag().get(0));
    EXPECT_FALSE(arr.tag().get(1));
    EXPECT_TRUE(arr.tag().get(2));
}

TEST(Controller, PredicatedCopyThroughIsa)
{
    Rig rig;
    rig.ctrl.enroll(rig.cc.coordOf(0));
    auto &arr = rig.cc.array(rig.cc.coordOf(0));

    bs::VecSlice mask = rig.rows.alloc(1);
    bs::VecSlice src = rig.rows.alloc(8), dst = rig.rows.alloc(8);
    bs::storeVector(arr, mask, {1, 0, 1});
    bs::storeVector(arr, src, {7, 7, 7});
    bs::storeVector(arr, dst, {1, 2, 3});

    Instruction load;
    load.op = Opcode::LoadTag;
    load.a = mask;
    rig.ctrl.broadcast(load);
    rig.ctrl.broadcast(Instruction::copy(src, dst, /*pred=*/true));

    auto r = bs::loadVector(arr, dst);
    EXPECT_EQ(r[0], 7u);
    EXPECT_EQ(r[1], 2u);
    EXPECT_EQ(r[2], 7u);
}

TEST(Controller, CyclesAccumulateAcrossProgram)
{
    Rig rig;
    rig.ctrl.enroll(rig.cc.coordOf(0));
    bs::VecSlice a = rig.rows.alloc(8);
    bs::VecSlice out = rig.rows.alloc(8);

    uint64_t c1 =
        rig.ctrl.broadcast(Instruction::zero(out));
    uint64_t c2 = rig.ctrl.broadcast(Instruction::copy(a, out));
    EXPECT_EQ(rig.ctrl.cyclesIssued(), c1 + c2);
}

TEST(ControllerDeath, EmptyGroup)
{
    cache::ComputeCache cc;
    Controller ctrl(cc);
    bs::VecSlice out{0, 8};
    EXPECT_DEATH(ctrl.broadcast(Instruction::zero(out)), "empty");
}

} // namespace
