/** @file Property tests: invariants the cost model must respect. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "dnn/models_extra.hh"

namespace
{

using namespace nc;
using core::NeuralCache;
using core::NeuralCacheConfig;

/** Random-but-plausible conv shapes for sweeps. */
dnn::ConvOp
randomConv(Rng &rng)
{
    static const unsigned ch[] = {3, 16, 32, 48, 64, 128, 192, 256,
                                  384, 512, 768, 1024, 2048};
    static const unsigned fs[] = {1, 3, 5, 7};
    dnn::ConvOp op;
    op.name = "rand";
    op.h = op.w = static_cast<unsigned>(rng.uniformInt(4, 64));
    op.c = ch[rng.uniformInt(0, 12)];
    op.r = fs[rng.uniformInt(0, 3)];
    op.s = fs[rng.uniformInt(0, 3)];
    op.m = static_cast<unsigned>(rng.uniformInt(1, 512));
    op.stride = static_cast<unsigned>(rng.uniformInt(1, 2));
    op.samePad = true;
    return op;
}

class CostSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CostSweep, ConvCostsArePositiveAndFinite)
{
    Rng rng(GetParam());
    core::CostModel model(cache::Geometry::xeonE5_35MB());
    for (int t = 0; t < 10; ++t) {
        dnn::ConvOp op = randomConv(rng);
        core::StageCost c = model.convCost(op);
        EXPECT_GT(c.totalPs(), 0.0) << op.c << "x" << op.r;
        EXPECT_TRUE(std::isfinite(c.totalPs()));
        EXPECT_GE(c.serialPasses, 1u);
        EXPECT_LE(c.utilization, 1.0);
        EXPECT_GT(c.utilization, 0.0);
        EXPECT_GT(c.activeArrayCycles, 0u);
    }
}

TEST_P(CostSweep, MoreSlicesNeverSlower)
{
    Rng rng(1000 + GetParam());
    core::CostModel m35(cache::Geometry::xeonE5_35MB());
    core::CostModel m60(cache::Geometry::scaled60MB());
    for (int t = 0; t < 10; ++t) {
        dnn::ConvOp op = randomConv(rng);
        double t35 = m35.convCost(op).totalPs();
        double t60 = m60.convCost(op).totalPs();
        EXPECT_LE(t60, t35 * 1.001)
            << op.c << "ch " << op.r << "x" << op.s << " m" << op.m;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostSweep, ::testing::Range(0, 5));

TEST(CostProperties, LatencyScalesInverselyWithComputeClock)
{
    auto net = dnn::inceptionV3();
    NeuralCacheConfig slow, fast;
    slow.cost.timing.computeClock.freqHz = 1.25e9;
    fast.cost.timing.computeClock.freqHz = 2.5e9;
    auto s = NeuralCache(slow).infer(net);
    auto f = NeuralCache(fast).infer(net);
    // Arithmetic phases exactly halve; movement phases are
    // clock-independent here (bus modeled separately).
    EXPECT_NEAR(s.phases.macPs, 2.0 * f.phases.macPs,
                f.phases.macPs * 1e-9);
    EXPECT_LT(f.latencyMs(), s.latencyMs());
}

TEST(CostProperties, FasterDramOnlyShrinksFilterPhase)
{
    auto net = dnn::inceptionV3();
    NeuralCacheConfig base, fast;
    fast.dram.effectiveBw.bytesPerSec = 40e9;
    auto b = NeuralCache(base).infer(net);
    auto f = NeuralCache(fast).infer(net);
    EXPECT_LT(f.phases.filterLoadPs, b.phases.filterLoadPs);
    EXPECT_NEAR(f.phases.macPs, b.phases.macPs, 1.0);
    EXPECT_NEAR(f.phases.reducePs, b.phases.reducePs, 1.0);
}

TEST(CostProperties, BatchLatencyMonotoneInBatchSize)
{
    auto net = dnn::inceptionV3();
    NeuralCache sim;
    double prev = 0;
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u}) {
        double ms = sim.inferBatch(net, b).batchMs();
        EXPECT_GT(ms, prev) << "batch " << b;
        prev = ms;
    }
}

TEST(CostProperties, ThroughputBoundedByArithmeticFloor)
{
    // Even infinitely amortized, per-image time can't drop below the
    // arithmetic + streaming floor; throughput stays finite.
    auto net = dnn::inceptionV3();
    NeuralCache sim;
    double thr = sim.inferBatch(net, 512).throughput();
    EXPECT_LT(thr, 2000.0);
    EXPECT_GT(thr, 100.0);
}

TEST(CostProperties, OverlapNeverHurts)
{
    for (const dnn::Network &net :
         {dnn::inceptionV3(), dnn::alexNet(), dnn::vgg16()}) {
        NeuralCacheConfig serial_cfg, overlap_cfg;
        overlap_cfg.cost.overlapInputStream = true;
        double s = NeuralCache(serial_cfg).infer(net).latencyMs();
        double o = NeuralCache(overlap_cfg).infer(net).latencyMs();
        EXPECT_LE(o, s * 1.0001) << net.name;
    }
}

TEST(CostProperties, EveryPhaseNonNegativeAcrossModels)
{
    for (const dnn::Network &net :
         {dnn::inceptionV3(), dnn::alexNet(), dnn::vgg16()}) {
        auto rep = NeuralCache().infer(net);
        const auto &p = rep.phases;
        for (double v : {p.filterLoadPs, p.inputStreamPs,
                         p.outputXferPs, p.macPs, p.reducePs,
                         p.quantPs, p.poolPs})
            EXPECT_GE(v, 0.0) << net.name;
    }
}

} // namespace
