/**
 * @file
 * Tests for the static bit-serial program verifier: every check
 * class dies by name on a hand-built illegal program (with the layer
 * and instruction index in the message), the canonical layer
 * programs verify clean with cycle sums bit-exact against the
 * CostModel, and a program's static cycle account matches what the
 * broadcast controller actually issues on a real array.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"
#include "core/cost_model.hh"
#include "core/program_verify.hh"
#include "dnn/layers.hh"
#include "mapping/plan.hh"

namespace
{

using namespace nc;
using core::Instruction;
using core::Opcode;
namespace bs = bitserial;
namespace verify = core::verify;

/** A 256-row context with rows [0,32) predefined and row 255 guarded. */
verify::ProgramContext
smallCtx()
{
    verify::ProgramContext ctx;
    ctx.layer = "testlayer";
    ctx.arrayRows = 256;
    ctx.guardRow = 255;
    ctx.initialDefs = {bs::VecSlice{0, 32}};
    return ctx;
}

// ---- Check class 1: row/slice bounds --------------------------------

TEST(ProgramVerifyDeath, OutOfBoundsSliceDiesWithLayerAndIndex)
{
    verify::ProgramContext ctx = smallCtx();
    std::vector<Instruction> prog{
        Instruction::zero(bs::VecSlice{0, 8}),
        Instruction::copy(bs::VecSlice{0, 8}, bs::VecSlice{250, 8}),
    };
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "program verify 'testlayer': inst 1 \\(copy\\).*"
                "out slice \\[250,\\+8\\) outside the 256-row array");
}

TEST(ProgramVerifyDeath, ZeroWidthOperandDies)
{
    verify::ProgramContext ctx = smallCtx();
    std::vector<Instruction> prog{
        Instruction::zero(bs::VecSlice{0, 0})};
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "inst 0 \\(zero\\): zero-width out operand");
}

TEST(ProgramVerifyDeath, EmptyProgramDies)
{
    verify::ProgramContext ctx = smallCtx();
    EXPECT_EXIT(verify::verifyProgram(ctx, {}),
                ::testing::ExitedWithCode(1),
                "program verify 'testlayer': empty program");
}

TEST(ProgramVerifyDeath, BandOutsideAuditedRangesDies)
{
    std::vector<mapping::AuditRange> ranges;
    mapping::AuditRange r;
    r.base = 0;
    r.arrays = 64;
    ranges.push_back(r);
    // Contained band passes...
    verify::requireAuditedBand("conv1", 10, 32, ranges);
    // ...one array past the audited extent does not.
    EXPECT_EXIT(verify::requireAuditedBand("conv1", 33, 32, ranges),
                ::testing::ExitedWithCode(1),
                "program verify 'conv1': array band \\[33,\\+32\\) is "
                "not contained");
}

// ---- Check class 2: def-before-use dataflow -------------------------

TEST(ProgramVerifyDeath, SenseBeforeDefDiesWithRowAndIndex)
{
    verify::ProgramContext ctx = smallCtx();
    // Rows [0,32) are prologue-defined; b at [40,+8) never is.
    std::vector<Instruction> prog{
        Instruction::add(bs::VecSlice{0, 8}, bs::VecSlice{40, 8},
                         bs::VecSlice{60, 9}),
    };
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "inst 0 \\(add\\): b reads row 40 \\(bit 0 of "
                "\\[40,\\+8\\)\\) before any def");
}

TEST(ProgramVerify, WritesBecomeDefsForLaterReads)
{
    verify::ProgramContext ctx = smallCtx();
    // zero defines [40,+8), so the add may read it.
    std::vector<Instruction> prog{
        Instruction::zero(bs::VecSlice{40, 8}),
        Instruction::add(bs::VecSlice{0, 8}, bs::VecSlice{40, 8},
                         bs::VecSlice{60, 9}),
    };
    verify::ProgramStats st = verify::verifyProgram(ctx, prog);
    EXPECT_EQ(st.instructions, 2u);
    EXPECT_EQ(st.defs, 8u + 9u);
    // 32 prologue rows + guard + 8 zeroed + 9 sum rows all live.
    EXPECT_EQ(st.maxLiveRows, 32u + 1u + 8u + 9u);
}

// ---- Check class 3: guard-row protection ----------------------------

TEST(ProgramVerifyDeath, GuardRowWriteDies)
{
    verify::ProgramContext ctx = smallCtx();
    std::vector<Instruction> prog{
        Instruction::zero(bs::VecSlice{248, 8})}; // rows 248..255
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "inst 0 \\(zero\\): out slice \\[248,\\+8\\) writes "
                "the reserved guard row 255");
}

// ---- Check class 4: carry/tag latch discipline ----------------------

TEST(ProgramVerifyDeath, OrphanedCarryConsumeDies)
{
    verify::ProgramContext ctx = smallCtx();
    // carryIn with no prior Add/Sub: the latches hold garbage.
    std::vector<Instruction> prog{
        Instruction::add(bs::VecSlice{0, 8}, bs::VecSlice{8, 8},
                         bs::VecSlice{40, 8}, bs::kNoRow,
                         /*carry_in=*/true),
    };
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "inst 0 \\(add\\): carry-in consumes the carry "
                "latches");
}

TEST(ProgramVerifyDeath, CarryClobberedBetweenProducerAndConsumerDies)
{
    verify::ProgramContext ctx = smallCtx();
    // add defines the carry, multiply's internal sequence clobbers
    // it, the second add may no longer consume it.
    std::vector<Instruction> prog{
        Instruction::add(bs::VecSlice{0, 8}, bs::VecSlice{8, 8},
                         bs::VecSlice{40, 8}),
        Instruction::multiply(bs::VecSlice{0, 8}, bs::VecSlice{8, 8},
                              bs::VecSlice{60, 16}),
        Instruction::add(bs::VecSlice{0, 8}, bs::VecSlice{8, 8},
                         bs::VecSlice{50, 8}, bs::kNoRow,
                         /*carry_in=*/true),
    };
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "inst 2 \\(add\\): carry-in consumes the carry "
                "latches");
}

TEST(ProgramVerifyDeath, PredicatedWriteWithoutTagDies)
{
    verify::ProgramContext ctx = smallCtx();
    std::vector<Instruction> prog{
        Instruction::copy(bs::VecSlice{0, 8}, bs::VecSlice{40, 8},
                          /*pred=*/true),
    };
    EXPECT_EXIT(verify::verifyProgram(ctx, prog),
                ::testing::ExitedWithCode(1),
                "inst 0 \\(copy\\): predicated write-back consumes "
                "the tag latches");
}

TEST(ProgramVerify, SearchArmsTheTagForPredicatedWrites)
{
    verify::ProgramContext ctx = smallCtx();
    std::vector<Instruction> prog{
        Instruction::search(bs::VecSlice{0, 8}, 0x42),
        Instruction::copy(bs::VecSlice{0, 8}, bs::VecSlice{40, 8}),
        Instruction::copy(bs::VecSlice{8, 8}, bs::VecSlice{40, 8},
                          /*pred=*/true),
    };
    verify::ProgramStats st = verify::verifyProgram(ctx, prog);
    EXPECT_EQ(st.instructions, 3u);
}

TEST(ProgramVerifyDeath, PredOnNonPredicableOpcodeDies)
{
    verify::ProgramContext ctx = smallCtx();
    Instruction mul = Instruction::multiply(
        bs::VecSlice{0, 8}, bs::VecSlice{8, 8}, bs::VecSlice{60, 16});
    mul.pred = true;
    EXPECT_EXIT(verify::verifyProgram(ctx, {mul}),
                ::testing::ExitedWithCode(1),
                "inst 0 \\(multiply\\): pred set on an opcode with no "
                "predicated write-back");
}

// ---- Check class 5: static cycles vs CostModel ----------------------

TEST(ProgramVerifyDeath, CostMismatchDiesNamingLayerAndKind)
{
    cache::Geometry geom = cache::Geometry::xeonE5_35MB();
    core::CostModel costs(geom);
    mapping::EltwiseRowLayout rows = mapping::makeEltwiseRowLayout(geom);
    std::vector<Instruction> prog =
        verify::eltwiseMergeProgram(rows, /*shift=*/8);
    prog.pop_back(); // drop the clamp: the static sum comes up short

    verify::ProgramContext ctx;
    ctx.layer = "res/add";
    ctx.arrayRows = geom.arrayRows;
    ctx.guardRow = rows.zrow;
    ctx.initialDefs = {rows.va, rows.vb, rows.gain};
    verify::ProgramStats st = verify::verifyProgram(ctx, prog);
    ASSERT_LT(st.staticCycles, costs.eltwiseProgramCycles());

    EXPECT_EXIT(verify::crossCheckProgramCostOrDie(
                    "res/add", "eltwise", st.staticCycles,
                    costs.eltwiseProgramCycles()),
                ::testing::ExitedWithCode(1),
                "program verify 'res/add': eltwise program cost "
                "mismatch");
}

// ---- Canonical programs: clean and bit-exact ------------------------

TEST(ProgramVerify, CanonicalConvProgramMatchesCostModel)
{
    cache::Geometry geom = cache::Geometry::xeonE5_35MB();
    core::CostModel costs(geom);
    dnn::Op op = dnn::conv("conv", 8, 8, 3, 3, 3, 4);
    mapping::FunctionalConvPlan fplan =
        mapping::planFunctionalConv(op.conv, geom);
    ASSERT_TRUE(fplan.fits);
    mapping::ConvRowLayout rows = mapping::makeConvRowLayout(geom, fplan);

    verify::ProgramContext ctx;
    ctx.layer = op.name();
    ctx.arrayRows = geom.arrayRows;
    ctx.guardRow = rows.zrow;
    ctx.initialDefs = rows.filt;
    ctx.initialDefs.insert(ctx.initialDefs.end(), rows.inp.begin(),
                           rows.inp.end());
    verify::ProgramStats st =
        verify::verifyProgram(ctx, verify::convWindowProgram(rows));
    EXPECT_EQ(st.instructions, 2u + rows.rs); // zero + macs + reduce
    EXPECT_EQ(st.staticCycles,
              costs.convWindowProgramCycles(rows.lanes, rows.rs));
}

TEST(ProgramVerify, CanonicalEltwiseProgramMatchesCostModel)
{
    cache::Geometry geom = cache::Geometry::xeonE5_35MB();
    core::CostModel costs(geom);
    mapping::EltwiseRowLayout rows = mapping::makeEltwiseRowLayout(geom);

    verify::ProgramContext ctx;
    ctx.layer = "elt";
    ctx.arrayRows = geom.arrayRows;
    ctx.guardRow = rows.zrow;
    ctx.initialDefs = {rows.va, rows.vb, rows.gain};
    verify::ProgramStats st = verify::verifyProgram(
        ctx, verify::eltwiseMergeProgram(rows, /*shift=*/8));
    EXPECT_EQ(st.instructions, 4u);
    EXPECT_EQ(st.staticCycles, costs.eltwiseProgramCycles());
}

TEST(ProgramVerify, CanonicalMaxPoolProgramMatchesCostModel)
{
    cache::Geometry geom = cache::Geometry::xeonE5_35MB();
    core::CostModel costs(geom);
    mapping::PoolRowLayout rows = mapping::makePoolRowLayout(geom);

    for (unsigned window : {1u, 4u, 9u}) {
        verify::ProgramContext ctx;
        ctx.layer = "pool";
        ctx.arrayRows = geom.arrayRows;
        ctx.guardRow = rows.zrow;
        ctx.initialDefs = {rows.cur};
        verify::ProgramStats st = verify::verifyProgram(
            ctx, verify::maxPoolWindowProgram(rows, window));
        EXPECT_EQ(st.instructions, window);
        EXPECT_EQ(st.staticCycles,
                  costs.maxPoolWindowProgramCycles(window))
            << "window " << window;
    }
}

// ---- Static account vs what the controller actually issues ----------

TEST(ProgramVerify, StaticCyclesMatchControllerIssueEltwise)
{
    cache::ComputeCache cc;
    core::Controller ctrl(cc);
    ctrl.enroll(cc.coordOf(0));
    auto &arr = cc.array(cc.coordOf(0));

    mapping::EltwiseRowLayout rows =
        mapping::makeEltwiseRowLayout(cc.geometry());
    bs::storeVector(arr, rows.va, {10, 200, 255});
    bs::storeVector(arr, rows.vb, {5, 100, 255});
    bs::storeVector(arr, rows.gain, {128, 128, 128});

    std::vector<Instruction> prog =
        verify::eltwiseMergeProgram(rows, /*shift=*/8);
    verify::ProgramContext ctx;
    ctx.layer = "elt";
    ctx.arrayRows = cc.geometry().arrayRows;
    ctx.guardRow = rows.zrow;
    ctx.initialDefs = {rows.va, rows.vb, rows.gain};
    verify::ProgramStats st = verify::verifyProgram(ctx, prog);

    uint64_t issued = ctrl.run(prog);
    EXPECT_EQ(issued, ctrl.cyclesIssued());
    EXPECT_EQ(st.staticCycles, issued);
}

TEST(ProgramVerify, StaticCyclesMatchControllerIssueMaxPool)
{
    cache::ComputeCache cc;
    core::Controller ctrl(cc);
    ctrl.enroll(cc.coordOf(0));
    auto &arr = cc.array(cc.coordOf(0));

    mapping::PoolRowLayout rows =
        mapping::makePoolRowLayout(cc.geometry());
    bs::storeVector(arr, rows.cur, {7, 3, 250});

    std::vector<Instruction> prog =
        verify::maxPoolWindowProgram(rows, /*window=*/4);
    verify::ProgramContext ctx;
    ctx.layer = "pool";
    ctx.arrayRows = cc.geometry().arrayRows;
    ctx.guardRow = rows.zrow;
    ctx.initialDefs = {rows.cur};
    verify::ProgramStats st = verify::verifyProgram(ctx, prog);

    EXPECT_EQ(st.staticCycles, ctrl.run(prog));
}

// ---- Controller operand rejection (the broadcast boundary) ----------

TEST(ControllerDeath, EmptyProgramRejectedByName)
{
    cache::ComputeCache cc;
    core::Controller ctrl(cc);
    ctrl.enroll(cc.coordOf(0));
    EXPECT_EXIT(ctrl.run({}), ::testing::ExitedWithCode(1),
                "empty broadcast program");
}

TEST(ControllerDeath, ZeroWidthOperandRejectedByName)
{
    cache::ComputeCache cc;
    core::Controller ctrl(cc);
    ctrl.enroll(cc.coordOf(0));
    EXPECT_EXIT(ctrl.broadcast(Instruction::zero(bs::VecSlice{0, 0})),
                ::testing::ExitedWithCode(1), "zero-width");
}

} // namespace
