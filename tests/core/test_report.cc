/** @file Tests for the report printers and the stats dump. */

#include <sstream>

#include <gtest/gtest.h>

#include "core/neural_cache.hh"
#include "core/report.hh"
#include "dnn/inception_v3.hh"

namespace
{

using namespace nc;

core::InferenceReport
smallReport()
{
    dnn::Network net;
    net.name = "tiny";
    net.stages.push_back(dnn::singleOpStage(
        "conv", dnn::conv("conv", 8, 8, 16, 3, 3, 8)));
    net.stages.push_back(dnn::singleOpStage(
        "pool", dnn::maxPool("pool", 8, 8, 8, 2, 2, 2)));
    return core::NeuralCache().infer(net);
}

TEST(Report, StageTableListsEveryStageAndTotal)
{
    auto rep = smallReport();
    std::ostringstream os;
    core::printStageTable(os, rep);
    std::string s = os.str();
    EXPECT_NE(s.find("conv"), std::string::npos);
    EXPECT_NE(s.find("pool"), std::string::npos);
    EXPECT_NE(s.find("total"), std::string::npos);
}

TEST(Report, BreakdownCoversSevenPhases)
{
    auto rep = smallReport();
    std::ostringstream os;
    core::printBreakdown(os, rep);
    std::string s = os.str();
    for (const char *phase :
         {"filter_load", "input_stream", "output_xfer", "macs",
          "reduction", "quantization", "pooling", "total"})
        EXPECT_NE(s.find(phase), std::string::npos) << phase;
}

TEST(Report, EnergyComponentsPrinted)
{
    auto rep = smallReport();
    std::ostringstream os;
    core::printEnergy(os, rep);
    std::string s = os.str();
    EXPECT_NE(s.find("energy.total_J"), std::string::npos);
    EXPECT_NE(s.find("power.avg_W"), std::string::npos);
}

TEST(Report, DumpStatsIsMachineReadable)
{
    auto rep = smallReport();
    std::ostringstream os;
    core::dumpStats(os, rep);
    std::string s = os.str();

    // Every line is "key value".
    std::istringstream lines(s);
    std::string line;
    unsigned n = 0;
    while (std::getline(lines, line)) {
        ASSERT_NE(line.find(' '), std::string::npos) << line;
        ++n;
    }
    EXPECT_GT(n, 20u);

    EXPECT_NE(s.find("sim.network tiny"), std::string::npos);
    EXPECT_NE(s.find("sim.latency_ms"), std::string::npos);
    EXPECT_NE(s.find("sim.image_slots"), std::string::npos);
    EXPECT_NE(s.find("sim.batch_passes"), std::string::npos);
    EXPECT_NE(s.find("phase.mac_ms"), std::string::npos);
    EXPECT_NE(s.find("stage.conv.latency_ms"), std::string::npos);
    EXPECT_NE(s.find("stage.pool.passes"), std::string::npos);
    EXPECT_NE(s.find("energy.total_J"), std::string::npos);
}

TEST(Report, ConfigDumpCoversEveryKnob)
{
    core::NeuralCacheConfig cfg;
    std::ostringstream os;
    core::printConfig(os, cfg);
    std::string s = os.str();
    for (const char *key :
         {"config.geometry.slices 14", "config.geometry.alu_slots "
                                       "1146880",
          "config.cost.mode paper-calibrated",
          "config.cost.paper_mac_cycles 236",
          "config.dram.effective_gbps 11",
          "config.energy.compute_pj 15.4", "config.sockets 2"})
        EXPECT_NE(s.find(key), std::string::npos) << key;
}

TEST(Report, ConfigDumpReflectsOverrides)
{
    core::NeuralCacheConfig cfg;
    cfg.geometry = nc::cache::Geometry::scaled60MB();
    cfg.cost.mode = core::ArithMode::Analytic;
    cfg.sockets = 1;
    std::ostringstream os;
    core::printConfig(os, cfg);
    std::string s = os.str();
    EXPECT_NE(s.find("config.geometry.slices 24"), std::string::npos);
    EXPECT_NE(s.find("config.cost.mode analytic"), std::string::npos);
    EXPECT_NE(s.find("config.sockets 1"), std::string::npos);
}

TEST(Report, DumpStatsPhaseSumsMatchTotal)
{
    auto rep = smallReport();
    double phases = rep.phases.filterLoadPs + rep.phases.inputStreamPs +
                    rep.phases.outputXferPs + rep.phases.macPs +
                    rep.phases.reducePs + rep.phases.quantPs +
                    rep.phases.poolPs;
    EXPECT_NEAR(phases, rep.phases.totalPs(), 1e-6);
    EXPECT_NEAR(rep.latencyPs, phases, phases * 1e-9);
}

} // namespace
