/**
 * @file
 * Shared randomized network generators for the parity harnesses:
 * Inception-style mixed (concat) stages, ResNet-style residual
 * blocks, and split-tail towers. test_branch_parity.cc pins these
 * bit-exact across backends per image; test_batch_parity.cc pins the
 * image-parallel runBatch fan-out against the serial per-image loop
 * over the same shapes.
 */

#ifndef NC_TESTS_CORE_BRANCH_NETS_HH
#define NC_TESTS_CORE_BRANCH_NETS_HH

#include <string>

#include "common/rng.hh"
#include "dnn/layers.hh"

namespace nc::testnets
{

/** An Inception-style mixed stage over @p cin channels at @p hw. */
inline dnn::Stage
mixedStage(const std::string &name, unsigned hw, unsigned cin,
           Rng &rng)
{
    dnn::Stage st;
    st.name = name;

    // Tower 0: 1x1 projection.
    unsigned m0 = 1 + static_cast<unsigned>(rng.uniformInt(0, 2));
    st.branches.push_back(dnn::Branch{
        "b0", {dnn::conv(name + "/b0/1x1", hw, hw, cin, 1, 1, m0)}});

    // Tower 1: 1x1 then 3x3 (both SAME, spatial size preserved).
    unsigned mid = 1 + static_cast<unsigned>(rng.uniformInt(0, 2));
    unsigned m1 = 1 + static_cast<unsigned>(rng.uniformInt(0, 2));
    st.branches.push_back(dnn::Branch{
        "b1",
        {dnn::conv(name + "/b1/1x1", hw, hw, cin, 1, 1, mid),
         dnn::conv(name + "/b1/3x3", hw, hw, mid, 3, 3, m1)}});

    // Tower 2: pool then 1x1, or a bare SAME pool (channels pass
    // through) — both Inception block shapes.
    if (rng.uniformInt(0, 1)) {
        unsigned m2 = 1 + static_cast<unsigned>(rng.uniformInt(0, 1));
        st.branches.push_back(dnn::Branch{
            "b2",
            {dnn::avgPool(name + "/b2/pool", hw, hw, cin, 3, 3, 1,
                          true),
             dnn::conv(name + "/b2/1x1", hw, hw, cin, 1, 1, m2)}});
    } else {
        st.branches.push_back(dnn::Branch{
            "b2",
            {dnn::maxPool(name + "/b2/pool", hw, hw, cin, 3, 3, 1,
                          true)}});
    }
    return st;
}

/** A ResNet basic block (identity or projection shortcut). */
inline dnn::Stage
residualStage(const std::string &name, unsigned hw, unsigned cin,
              unsigned cout, unsigned stride)
{
    unsigned out_hw = dnn::outDim(hw, 3, stride, true);
    dnn::Stage st;
    st.name = name;

    dnn::Branch main{
        "main",
        {dnn::conv(name + "/conv1", hw, hw, cin, 3, 3, cout, stride,
                   true),
         dnn::conv(name + "/conv2", out_hw, out_hw, cout, 3, 3, cout,
                   1, true),
         dnn::eltwiseAdd(name + "/add", out_hw, out_hw, cout)}};
    st.branches.push_back(main);

    if (stride != 1 || cin != cout) {
        dnn::Branch proj{
            "proj",
            {dnn::conv(name + "/proj", hw, hw, cin, 1, 1, cout,
                       stride, true)}};
        proj.shortcut = true;
        st.branches.push_back(proj);
    }
    return st;
}

/** Two chained mixed stages (the second consumes the concat). */
inline dnn::Network
randomMixedNet(const std::string &name, unsigned hw, unsigned cin,
               Rng &rng)
{
    dnn::Network net;
    net.name = name;
    net.stages.push_back(mixedStage("mix1", hw, cin, rng));
    unsigned c1 = 0;
    for (const auto &b : net.stages.back().branches)
        c1 += b.ops.back().isConv() ? b.ops.back().conv.m
                                    : b.ops.back().pool.c;
    net.stages.push_back(mixedStage("mix2", hw, c1, rng));
    return net;
}

/** A residual block followed by a 1x1 head conv. */
inline dnn::Network
residualNet(const std::string &name, unsigned hw, unsigned cin,
            unsigned cout, unsigned stride)
{
    dnn::Network net;
    net.name = name;
    net.stages.push_back(residualStage("block", hw, cin, cout,
                                       stride));
    unsigned out_hw = dnn::outDim(hw, 3, stride, true);
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", out_hw, out_hw, cout, 1, 1, 2)));
    return net;
}

} // namespace nc::testnets

#endif // NC_TESTS_CORE_BRANCH_NETS_HH
