/**
 * @file
 * Branch/eltwise parity harness: randomized multi-branch (Inception-
 * style concat) and residual (ResNet-style eltwise merge) networks
 * must produce bit-exact outputs whether they execute through the
 * reference CPU loops, the direct-ALU bit-serial executor, or the
 * broadcast-ISA path — and for any worker-thread count, since
 * independent branches fan out over the shared pool.
 *
 * Also home of the eltwise requantization property suite:
 * sat8(((a + b) * mult) >> shift) across saturation edges, and the
 * requantizer against accumulators at and above 2^31 (values that
 * would read as negative int32 — the unsigned in-array sequence must
 * saturate them, not sign-extend).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/engine.hh"
#include "core/executor.hh"
#include "core/layer_engine.hh"
#include "dnn/random.hh"
#include "dnn/reference.hh"
#include "mapping/plan.hh"

#include "branch_nets.hh"

namespace
{

using namespace nc;
using core::BackendKind;
using testnets::mixedStage;
using testnets::residualStage;

/**
 * Compile @p net once per (backend, thread count) and pin every
 * output byte-for-byte against the single-threaded reference run.
 */
void
expectBranchParity(const dnn::Network &net, const dnn::QTensor &in,
                   const std::string &tag)
{
    const BackendKind kinds[] = {BackendKind::Reference,
                                 BackendKind::Functional,
                                 BackendKind::Isa};
    const unsigned threads[] = {1, 3};

    std::vector<uint8_t> golden;
    for (BackendKind kind : kinds) {
        for (unsigned t : threads) {
            core::EngineOptions opts;
            opts.backend = kind;
            opts.threads = t;
            core::Engine engine(opts);
            auto model = engine.compile(net);
            auto res = model.run(in);
            ASSERT_FALSE(res.output.data().empty()) << tag;
            if (golden.empty()) {
                golden = res.output.data();
            } else {
                EXPECT_EQ(golden, res.output.data())
                    << tag << ": " << core::backendKindName(kind)
                    << " with " << t << " threads";
            }
        }
    }
}

TEST(BranchParity, RandomizedMixedStages)
{
    Rng rng(0x3a3a);
    for (unsigned trial = 0; trial < 4; ++trial) {
        unsigned hw = 5 + static_cast<unsigned>(rng.uniformInt(0, 2));
        unsigned c = 2 + static_cast<unsigned>(rng.uniformInt(0, 2));

        dnn::Network net;
        net.name = "mixed-parity-" + std::to_string(trial);
        net.stages.push_back(mixedStage("mix1", hw, c, rng));
        unsigned c1 = 0;
        for (const auto &b : net.stages.back().branches)
            c1 += b.ops.back().isConv() ? b.ops.back().conv.m
                                        : b.ops.back().pool.c;
        // A second mixed stage consumes the concat, proving the
        // channel offsets compose across stages.
        net.stages.push_back(mixedStage("mix2", hw, c1, rng));

        Rng irng(7000 + trial);
        auto in = dnn::randomQTensor(irng, c, hw, hw);
        expectBranchParity(net, in, net.name);
    }
}

TEST(BranchParity, ResidualIdentityAndProjection)
{
    struct Case
    {
        unsigned cin, cout, stride;
    } cases[] = {
        {3, 3, 1}, // identity shortcut: merge with the stage input
        {3, 5, 1}, // projection (channel change)
        {4, 4, 2}, // projection (downsample)
    };
    unsigned idx = 0;
    for (const auto &[cin, cout, stride] : cases) {
        dnn::Network net;
        net.name = "residual-parity-" + std::to_string(idx);
        net.stages.push_back(
            residualStage("block", 6, cin, cout, stride));
        // A head conv consumes the merged tensor.
        unsigned out_hw = dnn::outDim(6, 3, stride, true);
        net.stages.push_back(dnn::singleOpStage(
            "head",
            dnn::conv("head", out_hw, out_hw, cout, 1, 1, 2)));

        Rng irng(0x1e5 + idx);
        auto in = dnn::randomQTensor(irng, cin, 6, 6);
        expectBranchParity(net, in, net.name);
        ++idx;
    }
}

TEST(BranchParity, SplitTailTowersConcatInOpOrder)
{
    // The Mixed_7b/7c shape: the tower's last two convs both read the
    // penultimate tensor and their outputs concatenate.
    const unsigned hw = 5, cin = 3;
    dnn::Branch b0{"b0",
                   {dnn::conv("split/b0/1x1", hw, hw, cin, 1, 1, 2)}};
    dnn::Branch b1{"b1",
                   {dnn::conv("split/b1/1x1", hw, hw, cin, 1, 1, 3),
                    dnn::conv("split/b1/1x3", hw, hw, 3, 1, 3, 2),
                    dnn::conv("split/b1/3x1", hw, hw, 3, 3, 1, 2)},
                   /*splitTail=*/true};
    dnn::Stage st;
    st.name = "split";
    st.branches = {b0, b1};

    dnn::Network net;
    net.name = "split-tail-parity";
    net.stages.push_back(st);
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", hw, hw, 6, 1, 1, 2)));

    Rng irng(0x511);
    auto in = dnn::randomQTensor(irng, cin, hw, hw);
    expectBranchParity(net, in, net.name);
}

TEST(BranchParity, StageConcatPlanMatchesExecutedLayout)
{
    // The mapper's concat plan is the authority on where each
    // branch's output lands; pin its offsets against the layout the
    // run loop actually produces (branch order, shortcuts excluded).
    Rng rng(0xc0ca);
    dnn::Stage st = mixedStage("plan", 6, 3, rng);
    auto plan = mapping::planStageConcat(st);

    unsigned off = 0;
    for (size_t bi = 0; bi < st.branches.size(); ++bi) {
        EXPECT_EQ(plan.concatOffset[bi], off) << "branch " << bi;
        off += plan.branchOut[bi].c;
    }
    EXPECT_EQ(plan.out.c, off);
    EXPECT_EQ(plan.shortcutBranch, -1);

    // Residual stages: the shortcut feeds the merge, not the concat.
    dnn::Stage res = residualStage("res", 6, 3, 5, 2);
    auto rplan = mapping::planStageConcat(res);
    EXPECT_EQ(rplan.shortcutBranch, 1);
    EXPECT_EQ(rplan.out.c, 5u);
    EXPECT_EQ(rplan.concatOffset[0], 0u);
    EXPECT_EQ(rplan.out.h, dnn::outDim(6, 3, 2, true));
}

// ---- Eltwise requantization properties ------------------------------

TEST(EltwiseRequantProperty, KernelMatchesOracleAcrossScalars)
{
    Rng rng(0xe17);
    cache::ComputeCache cc;
    core::Executor ex(cc, 1u);
    core::LayerEngine le(cc, 1u);

    struct Scalars
    {
        uint8_t mult;
        unsigned shift;
    } cases[] = {
        {128, 8}, // the calibrated merge scalars (acc_max = 510)
        {255, 0}, // maximal gain: saturates for nearly every sum
        {1, 0},   // identity: saturates once a + b > 255
        {0, 0},   // degenerate zero gain
        {37, 3},  // odd gain / small shift
    };

    for (const auto &[mult, shift] : cases) {
        std::vector<uint8_t> a(300), b(300);
        for (size_t i = 0; i < a.size(); ++i) {
            a[i] = static_cast<uint8_t>(rng.uniformInt(0, 255));
            b[i] = static_cast<uint8_t>(rng.uniformInt(0, 255));
        }
        // Pin the saturation edges explicitly.
        a[0] = 255;
        b[0] = 255;
        a[1] = 255;
        b[1] = 0;
        a[2] = 0;
        b[2] = 0;

        auto want = dnn::eltwiseAddQuant(a, b, mult, shift);
        EXPECT_EQ(ex.eltwiseAdd(a, b, mult, shift), want)
            << "executor mult=" << int(mult) << " shift=" << shift;
        auto isa = le.prepareEltwise(mult, shift, 0);
        EXPECT_EQ(isa.run(a, b), want)
            << "isa mult=" << int(mult) << " shift=" << shift;
    }
}

TEST(EltwiseRequantProperty, NegativeInt32AccumulatorsSaturateUnsigned)
{
    // Accumulators at and above 2^31 read as negative int32; the
    // unsigned in-array multiply/shift/clamp must treat them as the
    // large magnitudes they are.
    cache::ComputeCache cc;
    core::Executor ex(cc, 1u);

    std::vector<uint32_t> acc = {
        0x80000000u,  // INT32_MIN as a bit pattern
        0xffffffffu,  // all ones
        0x80000001u,
        0x7fffffffu,  // largest positive int32 for contrast
        255, 256, 0,
    };
    struct Scalars
    {
        uint8_t mult;
        unsigned shift;
    } cases[] = {{1, 0}, {1, 24}, {255, 31}, {128, 8}};

    for (const auto &[mult, shift] : cases) {
        auto got = ex.requantize(acc, mult, shift);
        ASSERT_EQ(got.size(), acc.size());
        for (size_t i = 0; i < acc.size(); ++i) {
            uint64_t t =
                (static_cast<uint64_t>(acc[i]) * mult) >> shift;
            uint8_t want =
                static_cast<uint8_t>(t > 0xff ? 0xff : t);
            EXPECT_EQ(got[i], want)
                << "acc=" << acc[i] << " mult=" << int(mult)
                << " shift=" << shift;
        }
    }
}

TEST(EltwiseRequantProperty, RandomizedSweepAgainstOracle)
{
    Rng rng(0xa5a5);
    cache::ComputeCache cc;
    core::Executor ex(cc, 1u);

    for (unsigned trial = 0; trial < 20; ++trial) {
        uint8_t mult = static_cast<uint8_t>(rng.uniformInt(0, 255));
        unsigned shift =
            static_cast<unsigned>(rng.uniformInt(0, 16));
        size_t n = 1 + static_cast<size_t>(rng.uniformInt(0, 40));
        std::vector<uint8_t> a(n), b(n);
        for (size_t i = 0; i < n; ++i) {
            a[i] = static_cast<uint8_t>(rng.uniformInt(0, 255));
            b[i] = static_cast<uint8_t>(rng.uniformInt(0, 255));
        }
        EXPECT_EQ(ex.eltwiseAdd(a, b, mult, shift),
                  dnn::eltwiseAddQuant(a, b, mult, shift))
            << "trial " << trial;
    }
}

} // namespace
