/**
 * @file
 * Image-parallel batch parity harness (§IV-E): runBatch fans the
 * images of one batch over the shared pool, each image executing in
 * its own replica of the network's array bands — and the result must
 * be bit-identical to the serial per-image loop for every backend
 * {reference, functional, isa}, every thread count {1, 3}, and every
 * batch size {1, 2, 7, over-capacity}, across the randomized
 * mixed/residual nets the branch-parity suite generates.
 *
 * Also pins the §IV-E pass structure itself: the executed slot count
 * obeys the residency planner's capacity arithmetic, over-capacity
 * batches time-slice, and the analytic report prices the identical
 * structure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"
#include "sram/kernels.hh"

#include "branch_nets.hh"

namespace
{

using namespace nc;
using core::BackendKind;

std::vector<dnn::QTensor>
randomBatch(unsigned n, unsigned c, unsigned hw, uint64_t seed)
{
    Rng rng(seed);
    std::vector<dnn::QTensor> batch;
    batch.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        batch.push_back(dnn::randomQTensor(rng, c, hw, hw));
    return batch;
}

/** The oracle: the serial per-image loop on @p model (slot 0). */
std::vector<std::vector<uint8_t>>
serialLoop(core::CompiledModel &model,
           const std::vector<dnn::QTensor> &inputs)
{
    std::vector<std::vector<uint8_t>> outs;
    outs.reserve(inputs.size());
    for (const auto &in : inputs)
        outs.push_back(model.run(in).output.data());
    return outs;
}

TEST(BatchParity, ParallelBatchMatchesSerialLoopAcrossBackends)
{
    Rng rng(0xba7c);
    const dnn::Network nets[] = {
        testnets::randomMixedNet("batch-mixed", 5, 2, rng),
        testnets::residualNet("batch-residual", 6, 3, 5, 1),
    };

    for (const dnn::Network &net : nets) {
        // The serial-loop golden: reference backend, one thread —
        // the §IV-E batch must reproduce exactly this, every way.
        core::EngineOptions ref;
        ref.backend = BackendKind::Reference;
        ref.threads = 1;
        auto golden_model = core::Engine(ref).compile(net);
        unsigned cin = golden_model.inputChannels();
        unsigned hw = golden_model.inputHeight();

        for (unsigned batch : {1u, 2u, 7u}) {
            auto inputs =
                randomBatch(batch, cin, hw, 0x9000 + batch);
            auto golden = serialLoop(golden_model, inputs);

            for (BackendKind kind :
                 {BackendKind::Reference, BackendKind::Functional,
                  BackendKind::Isa}) {
                for (unsigned t : {1u, 3u}) {
                    core::EngineOptions opts;
                    opts.backend = kind;
                    opts.threads = t;
                    core::Engine engine(opts);
                    auto model = engine.compile(net);
                    auto res = model.runBatch(inputs);
                    ASSERT_EQ(res.outputs.size(), inputs.size());
                    EXPECT_EQ(res.report.batch, batch);
                    for (size_t i = 0; i < inputs.size(); ++i) {
                        EXPECT_EQ(res.outputs[i].data(), golden[i])
                            << net.name << " image " << i << ": "
                            << core::backendKindName(kind) << " with "
                            << t << " threads, batch " << batch;
                    }
                }
            }
        }
    }
}

TEST(BatchParity, EverySimdTierReproducesTheBatchBitExactly)
{
    // End-to-end tier parity: the whole engine pipeline — layout,
    // bit-serial arithmetic, batching — run once per runnable SIMD
    // dispatch tier, must produce the identical batch output. This
    // is the integration-level counterpart of the per-op kernel
    // diff suite (tests/sram/test_array_kernels.cc).
    Rng rng(0x51bd);
    auto net = testnets::randomMixedNet("batch-simd", 5, 2, rng);

    core::EngineOptions opts;
    opts.threads = 1;
    core::Engine engine(opts);
    auto model = engine.compile(net);
    auto inputs = randomBatch(4, model.inputChannels(),
                              model.inputHeight(), 0x51bd);

    const auto prev = sram::kern::activeTier();
    std::vector<std::vector<uint8_t>> golden;
    for (auto tier : sram::kern::availableTiers()) {
        sram::kern::forceTier(tier);
        auto res = model.runBatch(inputs);
        ASSERT_EQ(res.outputs.size(), inputs.size());
        if (golden.empty()) {
            for (const auto &out : res.outputs)
                golden.push_back(out.data());
            continue;
        }
        for (size_t i = 0; i < golden.size(); ++i)
            EXPECT_EQ(res.outputs[i].data(), golden[i])
                << "image " << i << " diverged at tier "
                << common::simd::tierName(tier);
    }
    sram::kern::forceTier(prev);
}

TEST(BatchParity, RepeatedBatchesAndInterleavedRunsAreBitIdentical)
{
    Rng rng(0x1b1b);
    auto net = testnets::randomMixedNet("batch-repeat", 5, 3, rng);

    core::EngineOptions opts;
    opts.threads = 3;
    core::Engine engine(opts);
    auto model = engine.compile(net);
    auto inputs = randomBatch(5, model.inputChannels(),
                              model.inputHeight(), 0xfeed);

    auto first = model.runBatch(inputs);
    // A single run in between must not disturb replica state...
    auto single = model.run(inputs[2]);
    auto second = model.runBatch(inputs);
    ASSERT_EQ(first.outputs.size(), second.outputs.size());
    for (size_t i = 0; i < first.outputs.size(); ++i)
        EXPECT_EQ(first.outputs[i].data(), second.outputs[i].data())
            << i;
    EXPECT_EQ(single.output.data(), first.outputs[2].data());
}

TEST(BatchParity, OverCapacityBatchTimeSlicesInPasses)
{
    // A cache of 20 arrays total: the net below pins 5 filter arrays
    // + 1 scratch slot per image, so only floor(20 / 6) = 3 images
    // fit concurrently and a batch of 7 must time-slice into 3
    // passes — while staying bit-identical to the serial loop.
    dnn::Network net;
    net.name = "over-capacity";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 8, 8, 3, 3, 3, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 8, 8, 2, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 2, 1, 1, 3)));

    core::EngineOptions opts;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 20;
    opts.config.geometry.banksPerWay = 1;
    opts.config.geometry.subarraysPerBank = 1;
    opts.config.geometry.arraysPerSubarray = 1;
    opts.backend = BackendKind::Functional;
    opts.threads = 3;
    core::Engine engine(opts);
    auto model = engine.compile(net);

    const mapping::BatchBandPlan &bands = model.batchBands();
    ASSERT_TRUE(bands.resident);
    EXPECT_EQ(bands.filterArrays, 5u);
    EXPECT_EQ(bands.perImageArrays, 6u);
    ASSERT_EQ(bands.imageSlots, 3u);
    EXPECT_EQ(bands.passes(7), 3u);

    const unsigned batch = 7; // > imageSlots: over-capacity
    auto inputs = randomBatch(batch, 3, 8, 0xca9);
    auto serial = serialLoop(model, inputs);
    auto res = model.runBatch(inputs);
    ASSERT_EQ(res.outputs.size(), size_t(batch));
    for (size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(res.outputs[i].data(), serial[i]) << i;

    // Replicas were pinned lazily, capped at the capacity slots, and
    // the analytic report prices the identical pass structure.
    EXPECT_EQ(model.preparedImageSlots(), 3u);
    EXPECT_EQ(res.report.imageSlots, 3u);
    EXPECT_EQ(res.report.batchPasses, 3u);

    // One-thread engine, same over-capacity batch: still identical.
    opts.threads = 1;
    auto model1 = core::Engine(opts).compile(net);
    auto res1 = model1.runBatch(inputs);
    for (size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(res1.outputs[i].data(), serial[i]) << i;
}

TEST(BatchParity, StreamingRegimePinsSingleSlot)
{
    // 6 arrays total: conv1 alone wants 4, so the whole net (4 + 3 +
    // scratch) exceeds the cache and compiles into the streaming
    // regime — batches fall back to the serial per-image loop
    // (imageSlots == 1), still bit-identical.
    dnn::Network net;
    net.name = "streaming-batch";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 6, 6, 3, 3, 3, 4)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 6, 6, 4, 1, 1, 3)));

    core::EngineOptions opts;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    opts.config.geometry.banksPerWay = 1;
    opts.config.geometry.subarraysPerBank = 1;
    opts.config.geometry.arraysPerSubarray = 1;
    opts.backend = BackendKind::Functional;
    opts.threads = 3;
    core::Engine engine(opts);
    auto model = engine.compile(net);

    ASSERT_FALSE(model.batchBands().resident);
    EXPECT_EQ(model.batchBands().imageSlots, 1u);
    EXPECT_EQ(model.batchBands().passes(4), 4u);

    auto inputs = randomBatch(4, 3, 6, 0x57e);
    auto serial = serialLoop(model, inputs);
    auto res = model.runBatch(inputs);
    for (size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(res.outputs[i].data(), serial[i]) << i;
    EXPECT_EQ(model.preparedImageSlots(), 1u);
}

TEST(BatchParity, BandPlanCapacityArithmetic)
{
    cache::Geometry geom; // 4480 arrays
    auto p = mapping::planBatchBands(100, 4, geom, true);
    EXPECT_TRUE(p.resident);
    EXPECT_EQ(p.perImageArrays, 104u);
    EXPECT_EQ(p.imageSlots, 4480u / 104u);
    EXPECT_EQ(p.passes(1), 1u);
    EXPECT_EQ(p.passes(43), 1u);
    EXPECT_EQ(p.passes(44), 2u);

    // Streaming verdict pins one slot regardless of capacity.
    auto s = mapping::planBatchBands(100, 4, geom, false);
    EXPECT_FALSE(s.resident);
    EXPECT_EQ(s.imageSlots, 1u);
    EXPECT_EQ(s.passes(17), 17u);

    // A footprint beyond the cache is streaming even when the
    // caller's residency hint says otherwise.
    auto big = mapping::planBatchBands(5000, 4, geom, true);
    EXPECT_FALSE(big.resident);
    EXPECT_EQ(big.imageSlots, 1u);

    // Scratch slots are clamped to at least one.
    auto z = mapping::planBatchBands(10, 0, geom, true);
    EXPECT_EQ(z.scratchSlots, 1u);
    EXPECT_EQ(z.perImageArrays, 11u);
}

} // namespace
