/** @file End-to-end latency/throughput reproduction checks. */

#include <gtest/gtest.h>

#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

namespace
{

using namespace nc::core;
using nc::cache::Geometry;

class NeuralCacheInception : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        net = new nc::dnn::Network(nc::dnn::inceptionV3());
    }

    static void
    TearDownTestSuite()
    {
        delete net;
        net = nullptr;
    }

    static nc::dnn::Network *net;
};

nc::dnn::Network *NeuralCacheInception::net = nullptr;

TEST_F(NeuralCacheInception, Batch1LatencyNearPaper)
{
    // Figure 15 / Table IV: 4.72 ms at 35 MB. We accept +-10%.
    NeuralCache sim;
    auto rep = sim.infer(*net);
    EXPECT_GT(rep.latencyMs(), 4.72 * 0.9);
    EXPECT_LT(rep.latencyMs(), 4.72 * 1.1);
}

TEST_F(NeuralCacheInception, BreakdownMatchesFigure14)
{
    // Figure 14 shares: filter 46%, input 15%, output 4%, MACs 20%,
    // reduction 10%, quantization 5%, pooling 0.04%.
    NeuralCache sim;
    auto rep = sim.infer(*net);
    double total = rep.phases.totalPs();
    auto pct = [&](double ps) { return 100.0 * ps / total; };

    EXPECT_NEAR(pct(rep.phases.filterLoadPs), 46.0, 6.0);
    EXPECT_NEAR(pct(rep.phases.inputStreamPs), 15.0, 6.0);
    EXPECT_NEAR(pct(rep.phases.outputXferPs), 4.0, 2.0);
    EXPECT_NEAR(pct(rep.phases.macPs), 20.0, 6.0);
    EXPECT_NEAR(pct(rep.phases.reducePs), 10.0, 6.0);
    EXPECT_NEAR(pct(rep.phases.quantPs), 5.0, 3.0);
    EXPECT_NEAR(pct(rep.phases.poolPs), 0.04, 0.1);
}

TEST_F(NeuralCacheInception, EnergyAndPowerNearTableIII)
{
    // Table III: 0.246 J, 52.92 W.
    NeuralCache sim;
    auto rep = sim.infer(*net);
    EXPECT_NEAR(rep.energy.totalJ(), 0.246, 0.03);
    EXPECT_NEAR(rep.avgPowerW(), 52.92, 6.0);
}

TEST_F(NeuralCacheInception, CapacityScalingMatchesTableIV)
{
    // Table IV: 35 -> 45 -> 60 MB gives 4.72 -> 4.12 -> 3.79 ms.
    // Filter loading is capacity-independent; compute and input
    // streaming shrink with added slices.
    NeuralCacheConfig c35, c45, c60;
    c45.geometry = Geometry::scaled45MB();
    c60.geometry = Geometry::scaled60MB();
    double t35 = NeuralCache(c35).infer(*net).latencyMs();
    double t45 = NeuralCache(c45).infer(*net).latencyMs();
    double t60 = NeuralCache(c60).infer(*net).latencyMs();

    EXPECT_LT(t45, t35);
    EXPECT_LT(t60, t45);
    // Paper ratios: 4.12/4.72 = 0.873, 3.79/4.72 = 0.803.
    EXPECT_NEAR(t45 / t35, 0.873, 0.06);
    EXPECT_NEAR(t60 / t35, 0.803, 0.08);
}

TEST_F(NeuralCacheInception, ThroughputCurveShape)
{
    // Figure 16: throughput rises with batch (filter amortization)
    // and plateaus; peak ~604 inf/s on the dual-socket node.
    NeuralCache sim;
    double t1 = sim.inferBatch(*net, 1).throughput();
    double t16 = sim.inferBatch(*net, 16).throughput();
    double t256 = sim.inferBatch(*net, 256).throughput();

    EXPECT_GT(t16, t1);
    // Batch-1 ~212 inf/s per socket (~424 dual).
    EXPECT_NEAR(t1 / 2.0, 212.0, 40.0);
    // Peak within 15% of 604.
    EXPECT_NEAR(std::max(t16, t256), 604.0, 90.0);
    // Plateau: the 16 -> 256 change is small compared to 1 -> 16.
    EXPECT_LT(std::abs(t256 - t16), std::abs(t16 - t1));
}

TEST_F(NeuralCacheInception, BatchingAmortizesFilterLoading)
{
    NeuralCache sim;
    auto r1 = sim.inferBatch(*net, 1);
    auto r8 = sim.inferBatch(*net, 8);
    // Whole-batch time grows sublinearly.
    EXPECT_LT(r8.batchPs, 8.0 * r1.batchPs);
    // Spill appears only with batching.
    EXPECT_DOUBLE_EQ(r1.spillPs, 0.0);
    EXPECT_GT(r8.spillPs, 0.0);
}

TEST_F(NeuralCacheInception, SpeedupsOverBaselines)
{
    // Figure 15: 18.3x over the CPU (86 ms), 7.7x over the GPU.
    NeuralCache sim;
    double nc_ms = sim.infer(*net).latencyMs();
    EXPECT_NEAR(86.0 / nc_ms, 18.3, 2.5);
    EXPECT_NEAR((86.0 / 18.3 * 7.7) / nc_ms, 7.7, 1.0);
}

TEST_F(NeuralCacheInception, StagesCoverTableI)
{
    NeuralCache sim;
    auto rep = sim.infer(*net);
    ASSERT_EQ(rep.stages.size(), 20u);
    for (size_t i = 0; i < rep.stages.size(); ++i) {
        EXPECT_EQ(rep.stages[i].name, net->stages[i].name);
        EXPECT_GT(rep.stages[i].totalPs(), 0.0) << i;
    }
}

TEST(NeuralCacheSmall, TrivialNetworkRuns)
{
    nc::dnn::Network tiny;
    tiny.name = "tiny";
    tiny.stages.push_back(nc::dnn::singleOpStage(
        "conv", nc::dnn::conv("conv", 8, 8, 16, 3, 3, 8)));
    NeuralCache sim;
    auto rep = sim.infer(tiny);
    EXPECT_GT(rep.latencyPs, 0.0);
    EXPECT_EQ(rep.stages.size(), 1u);
    EXPECT_EQ(rep.batch, 1u);
}

TEST(NeuralCacheSmall, ReportThroughputConsistency)
{
    nc::dnn::Network tiny;
    tiny.stages.push_back(nc::dnn::singleOpStage(
        "conv", nc::dnn::conv("conv", 8, 8, 16, 3, 3, 8)));
    NeuralCacheConfig cfg;
    cfg.sockets = 1;
    NeuralCache sim(cfg);
    auto rep = sim.inferBatch(tiny, 4);
    EXPECT_NEAR(rep.throughput(),
                4.0 / (rep.batchPs * nc::picoToSec), 1e-6);
}

// Degenerate inputs are hard errors, never silently-empty (or NaN)
// reports: a zero batch or an empty network has no meaningful
// latency/energy answer.
TEST_F(NeuralCacheInception, BatchReportCarriesPassStructure)
{
    // Full-resolution Inception v3 exceeds the cache (~19k arrays),
    // so the §IV-E banding puts it in the streaming regime: one
    // image slot, one pass per image — and the legacy facade's
    // report agrees with the capacity arithmetic.
    NeuralCache sim;
    auto rep = sim.inferBatch(*net, 8);
    EXPECT_EQ(rep.imageSlots, 1u);
    EXPECT_EQ(rep.batchPasses, 8u);

    auto bands =
        sim.costModel().planImageBands(*net);
    EXPECT_FALSE(bands.resident);
    EXPECT_GT(bands.filterArrays,
              uint64_t(sim.costModel().geometry().totalArrays()));
}

TEST(NeuralCacheDeath, ZeroBatchIsHardError)
{
    nc::dnn::Network tiny;
    tiny.name = "tiny";
    tiny.stages.push_back(nc::dnn::singleOpStage(
        "conv", nc::dnn::conv("conv", 8, 8, 16, 3, 3, 8)));
    NeuralCache sim;
    EXPECT_DEATH((void)sim.inferBatch(tiny, 0), "empty batch");
}

TEST(NeuralCacheDeath, EmptyNetworkIsHardError)
{
    nc::dnn::Network empty;
    empty.name = "empty";
    NeuralCache sim;
    EXPECT_DEATH((void)sim.infer(empty), "empty network");
    EXPECT_DEATH((void)sim.inferBatch(empty, 4), "empty network");
}

} // namespace
