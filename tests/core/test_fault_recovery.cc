/**
 * @file
 * End-to-end fault tolerance: BIST retirements at compile, the
 * runtime canary detect→retire→substitute→retry loop on run() and
 * runBatch(), the hard floors (retry budget, minimum capacity), and
 * the per-backend campaign rules — all proven bit-identical to the
 * fault-free reference wherever repair claims to succeed.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"

namespace
{

using namespace nc;
using core::BackendKind;

dnn::Network
smallNet()
{
    dnn::Network net;
    net.name = "fault-recovery";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 8, 8, 3, 3, 3, 4)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 8, 8, 4, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 4, 1, 1, 3)));
    return net;
}

/** 96 arrays (1 slice x 6 ways x default bank fan-out): big enough
 * for replicas and spares, small enough to kill to the floor. */
core::EngineOptions
baseOpts()
{
    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.threads = 1;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    return opts;
}

dnn::QTensor
image(uint64_t seed)
{
    Rng rng(seed);
    return dnn::randomQTensor(rng, 3, 8, 8);
}

TEST(FaultRecovery, BistRetiresDeadArraysBeforePlacement)
{
    auto net = smallNet();
    auto img = image(0x11);
    auto want = core::Engine(baseOpts()).compile(net).run(img);

    auto opts = baseOpts();
    opts.faults.killArrays = {0, 1, 2};
    auto model = core::Engine(opts).compile(net);
    EXPECT_TRUE(model.canaryArmed());
    EXPECT_EQ(model.computeCache()->usableArrays(), 93u);

    auto res = model.run(img);
    EXPECT_EQ(res.output.data(), want.output.data());
    EXPECT_EQ(res.report.arraysRetired, 3u);
    EXPECT_EQ(res.report.faultsDetected, 0u); // caught before runtime
    EXPECT_EQ(res.report.passRetries, 0u);
}

TEST(FaultRecovery, MidRunFlipIsDetectedRepairedAndRetried)
{
    auto net = smallNet();
    auto img = image(0x22);
    auto want = core::Engine(baseOpts()).compile(net).run(img);

    auto opts = baseOpts();
    opts.faults.killArrays = {95}; // arm the campaign, kill the tail
    auto model = core::Engine(opts).compile(net);
    ASSERT_TRUE(model.canaryArmed());

    // A soft error strikes logical array 0's guard row mid-run: the
    // canary must catch it, retire the array, and recompute.
    auto *cc = model.computeCache();
    cc->injectFlip(cc->physicalOf(0), cc->geometry().arrayRows - 1,
                   3);

    auto res = model.run(img);
    EXPECT_EQ(res.output.data(), want.output.data());
    EXPECT_EQ(res.report.faultsDetected, 1u);
    EXPECT_EQ(res.report.arraysRetired, 2u); // 1 BIST + 1 canary
    EXPECT_EQ(res.report.passRetries, 1u);

    // The healed plan is stable: repeat runs stay identical and the
    // cumulative counters do not move.
    auto again = model.run(img);
    EXPECT_EQ(again.output.data(), want.output.data());
    EXPECT_EQ(again.report.faultsDetected, 1u);
    EXPECT_EQ(again.report.arraysRetired, 2u);
    EXPECT_EQ(again.report.passRetries, 1u);
}

TEST(FaultRecovery, BatchPassHealsAndReruns)
{
    auto net = smallNet();
    std::vector<dnn::QTensor> inputs;
    for (unsigned i = 0; i < 4; ++i)
        inputs.push_back(image(0x30 + i));

    auto clean = core::Engine(baseOpts()).compile(net);
    std::vector<std::vector<uint8_t>> want;
    for (const auto &in : inputs)
        want.push_back(clean.run(in).output.data());

    auto opts = baseOpts();
    opts.threads = 3;
    opts.faults.killArrays = {95};
    auto model = core::Engine(opts).compile(net);

    // Warm-up pins the image replicas; the flip then strikes between
    // batches, so the second batch's first pass must detect and heal.
    auto warm = model.runBatch(inputs);
    for (size_t i = 0; i < inputs.size(); ++i)
        ASSERT_EQ(warm.outputs[i].data(), want[i]) << i;

    auto *cc = model.computeCache();
    cc->injectFlip(cc->physicalOf(0), cc->geometry().arrayRows - 1,
                   9);

    auto res = model.runBatch(inputs);
    for (size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(res.outputs[i].data(), want[i]) << i;
    EXPECT_GE(res.report.faultsDetected, 1u);
    EXPECT_GE(res.report.passRetries, 1u);
    EXPECT_EQ(res.report.arraysRetired, 2u);
}

TEST(FaultRecoveryDeath, RetryBudgetExhaustionIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Every touch flips a bit: no repair can ever produce a clean
    // sweep, so the budget drains and the run must die naming it
    // rather than return corrupt output.
    auto opts = baseOpts();
    opts.faults.transientRate = 1.0;
    opts.faults.bist = false;
    opts.faults.retryBudget = 1;
    auto img = image(0x44);
    EXPECT_DEATH(
        {
            auto model = core::Engine(opts).compile(smallNet());
            (void)model.run(img);
        },
        "retry budget");
}

TEST(FaultRecoveryDeath, CapacityFloorNamesTheRetiredArrays)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // 95 of 96 arrays dead: graceful degradation has a floor, and
    // falling through it is a compile-time hard error that lists the
    // casualties.
    auto opts = baseOpts();
    for (uint64_t i = 0; i < 95; ++i)
        opts.faults.killArrays.push_back(i);
    EXPECT_DEATH((void)core::Engine(opts).compile(smallNet()),
                 "retired arrays");
}

TEST(FaultRecoveryDeath, AnalyticBackendRefusesCampaigns)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto opts = baseOpts();
    opts.backend = BackendKind::Analytic;
    opts.faults.killArrays = {0};
    EXPECT_DEATH((void)core::Engine(opts).compile(smallNet()),
                 "analytic backend has no arrays");
}

TEST(FaultRecovery, IsaBackendIsBistOnlyAndRefusesTransients)
{
    auto net = smallNet();
    auto img = image(0x55);

    auto isa = baseOpts();
    isa.backend = BackendKind::Isa;
    auto want = core::Engine(isa).compile(net).run(img);

    // Static defects: BIST retires them at compile and the ISA path
    // plans around the casualty — but no runtime canary is armed.
    auto opts = isa;
    opts.faults.killArrays = {90};
    auto model = core::Engine(opts).compile(net);
    EXPECT_FALSE(model.canaryArmed());
    auto res = model.run(img);
    EXPECT_EQ(res.output.data(), want.output.data());
    EXPECT_EQ(res.report.arraysRetired, 1u);

    // Mid-run transients would corrupt ISA outputs with no detector:
    // the campaign is refused outright.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto bad = isa;
    bad.faults.transientRate = 0.5;
    EXPECT_DEATH((void)core::Engine(bad).compile(net),
                 "broadcast-ISA");
}

TEST(FaultRecovery, EngineOverlaysNcFaultsEnvironment)
{
    setenv("NC_FAULTS", "kill_list=0:1:2", 1);
    core::Engine eng(baseOpts());
    ASSERT_EQ(eng.options().faults.killArrays.size(), 3u);
    EXPECT_EQ(eng.options().faults.killArrays[2], 2u);
    unsetenv("NC_FAULTS");
}

} // namespace
