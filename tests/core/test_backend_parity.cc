/**
 * @file
 * Backend parity harness: randomized conv/fc/pool networks must
 * produce bit-exact outputs whether they execute through the
 * reference CPU loops, the direct-ALU bit-serial executor, or the
 * broadcast-ISA path — and the analytic cost model must agree with
 * the functional executor's measured cycles on the shapes the
 * executor supports.
 */

#include <gtest/gtest.h>

#include "bitserial/cost.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "core/executor.hh"
#include "core/layer_engine.hh"
#include "dnn/random.hh"

namespace
{

using namespace nc;
using core::BackendKind;

/** Compile @p net once per backend and run @p in through each. */
void
expectThreeWayParity(const dnn::Network &net,
                     const core::ModelWeights &mw,
                     const dnn::QTensor &in, const std::string &tag)
{
    std::vector<uint8_t> outputs[3];
    const BackendKind kinds[] = {BackendKind::Reference,
                                 BackendKind::Functional,
                                 BackendKind::Isa};
    for (int i = 0; i < 3; ++i) {
        core::EngineOptions opts;
        opts.backend = kinds[i];
        core::Engine engine(opts);
        auto model = engine.compile(net, mw);
        auto res = model.run(in);
        outputs[i] = res.output.data();
        ASSERT_FALSE(outputs[i].empty()) << tag;
    }
    EXPECT_EQ(outputs[0], outputs[1])
        << tag << ": reference vs functional";
    EXPECT_EQ(outputs[0], outputs[2]) << tag << ": reference vs isa";
}

TEST(BackendParity, RandomizedConvPoolNetworks)
{
    Rng rng(0xb0b);
    for (unsigned trial = 0; trial < 5; ++trial) {
        unsigned c = 1 + static_cast<unsigned>(rng.uniformInt(0, 5));
        unsigned m = 1 + static_cast<unsigned>(rng.uniformInt(0, 4));
        unsigned k = rng.uniformInt(0, 1) ? 3 : 1;
        unsigned stride =
            1 + static_cast<unsigned>(rng.uniformInt(0, 1));
        bool same_pad = rng.uniformInt(0, 1) != 0;
        unsigned hw = 6 + static_cast<unsigned>(rng.uniformInt(0, 3));

        dnn::Network net;
        net.name = "parity-" + std::to_string(trial);
        net.stages.push_back(dnn::singleOpStage(
            "conv1",
            dnn::conv("conv1", hw, hw, c, k, k, m, stride,
                      same_pad)));
        unsigned oh = net.stages.back()
                          .branches.front()
                          .ops.front()
                          .conv.outH();
        bool pooled = oh >= 4 && oh % 2 == 0;
        if (pooled) {
            net.stages.push_back(dnn::singleOpStage(
                "pool1",
                dnn::maxPool("pool1", oh, oh, m, 2, 2, 2)));
            oh /= 2;
        }
        net.stages.push_back(dnn::singleOpStage(
            "head", dnn::conv("head", oh, oh, m, 1, 1, 2)));

        Rng wrng(1000 + trial);
        core::ModelWeights mw;
        mw.emplace("conv1", dnn::randomQWeights(wrng, m, c, k, k));
        mw.emplace("head", dnn::randomQWeights(wrng, 2, m, 1, 1));
        auto in = dnn::randomQTensor(wrng, c, hw, hw);

        expectThreeWayParity(net, mw, in, net.name);
    }
}

TEST(BackendParity, AvgPoolAndFcNetworks)
{
    Rng wrng(0xfc);
    dnn::Network net;
    net.name = "parity-avg-fc";
    net.stages.push_back(dnn::singleOpStage(
        "conv", dnn::conv("conv", 8, 8, 3, 3, 3, 4)));
    // 4x4 VALID average pool windows over the 8x8 SAME conv output
    // (2x2 stride 2 — a non-power-of-two window would also work but
    // 4-element windows exercise the in-array shift path).
    net.stages.push_back(dnn::singleOpStage(
        "avg", dnn::avgPool("avg", 8, 8, 4, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "fc", dnn::fullyConnected("fc", 4 * 4 * 4, 3)));

    core::ModelWeights mw;
    mw.emplace("conv", dnn::randomQWeights(wrng, 4, 3, 3, 3));
    mw.emplace("fc", dnn::randomQWeights(wrng, 3, 64, 1, 1));
    auto in = dnn::randomQTensor(wrng, 3, 8, 8);

    expectThreeWayParity(net, mw, in, net.name);
}

TEST(BackendParity, OddAvgPoolWindowUsesRestoringDivide)
{
    Rng wrng(0x0dd);
    dnn::Network net;
    net.name = "parity-avg3";
    net.stages.push_back(dnn::singleOpStage(
        "conv", dnn::conv("conv", 9, 9, 2, 3, 3, 3)));
    // 3x3 window: 9 is not a power of two, so the bit-serial path
    // divides in-array (§IV-D) instead of shifting.
    net.stages.push_back(dnn::singleOpStage(
        "avg", dnn::avgPool("avg", 9, 9, 3, 3, 3, 3)));

    core::ModelWeights mw;
    mw.emplace("conv", dnn::randomQWeights(wrng, 3, 2, 3, 3));
    auto in = dnn::randomQTensor(wrng, 2, 9, 9);

    expectThreeWayParity(net, mw, in, net.name);
}

TEST(BackendParity, IsaSamePadMaxPoolRunsOnBroadcastPath)
{
    // The broadcast MaxInto program used to cover VALID windows only
    // (SAME fell back to the executor's bit-serial pooling). Edge
    // windows now simply run shorter programs, so the ISA path owns
    // SAME padding end to end — pinned here against the reference
    // and the direct executor.
    Rng wrng(0x5a3e);
    dnn::Network net;
    net.name = "parity-same-maxpool";
    net.stages.push_back(dnn::singleOpStage(
        "conv", dnn::conv("conv", 7, 7, 3, 3, 3, 4)));
    // 3x3 stride-2 SAME over 7x7: output 4x4, with partial windows on
    // the high edges.
    net.stages.push_back(dnn::singleOpStage(
        "pool", dnn::maxPool("pool", 7, 7, 4, 3, 3, 2, true)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 4, 1, 1, 2)));

    core::ModelWeights mw;
    mw.emplace("conv", dnn::randomQWeights(wrng, 4, 3, 3, 3));
    mw.emplace("head", dnn::randomQWeights(wrng, 2, 4, 1, 1));
    auto in = dnn::randomQTensor(wrng, 3, 7, 7);

    expectThreeWayParity(net, mw, in, net.name);

    // Directly at the LayerEngine level too: the broadcast pool must
    // match the reference for every padding mode.
    cache::ComputeCache cc;
    core::LayerEngine le(cc, 1u);
    auto pooled = le.maxPoolLayer(in, 3, 3, 2, /*same_pad=*/true);
    auto want = dnn::maxPoolQuant(in, 3, 3, 2, true);
    EXPECT_EQ(pooled.data(), want.data());
}

TEST(BackendParity, AnalyticMacCyclesMatchFunctionalMeasurement)
{
    // On a single-window conv the functional executor's lock-step
    // cycles decompose exactly into zero + RxS MACs + reduction, and
    // the analytic model (Analytic arithmetic mode) prices the MAC
    // and reduction phases from the same closed forms.
    // 3x3 shapes only: for 1x1 filters the mapper packs channels
    // into the RS dimension (ft.effRS = C), a transform the simple
    // one-array executor mapping does not perform.
    struct Case
    {
        unsigned c, k;
    } cases[] = {{16, 3}, {4, 3}, {32, 3}};

    for (const auto &[c, k] : cases) {
        Rng rng(c * 100 + k);
        cache::ComputeCache cc;
        core::Executor ex(cc);
        auto in = dnn::randomQTensor(rng, c, k, k);
        auto w = dnn::randomQWeights(rng, 1, c, k, k);
        unsigned oh, ow;
        ex.conv(in, w, 1, false, oh, ow);
        ASSERT_EQ(oh * ow, 1u);

        unsigned lanes = static_cast<unsigned>(roundUpPow2(c));
        unsigned red_bits = 24 + log2Ceil(lanes);
        uint64_t mac_cycles =
            uint64_t(k) * k * bitserial::implMacScratchCycles(8, 24);
        uint64_t expect =
            bitserial::implCopyCycles(red_bits) + mac_cycles +
            bitserial::implReduceSumCycles(24, lanes, 2);
        EXPECT_EQ(ex.lockstepCycles(), expect) << c << "x" << k;

        core::CostConfig cfg;
        cfg.mode = core::ArithMode::Analytic;
        core::CostModel model(cc.geometry(), cfg);
        auto op = dnn::conv("probe", k, k, c, k, k, 1, 1, false).conv;
        auto plan = mapping::planConv(op, cc.geometry());
        ASSERT_EQ(plan.ft.effRS, k * k) << c << "x" << k;
        EXPECT_DOUBLE_EQ(model.macCyclesPerConv(plan),
                         static_cast<double>(mac_cycles))
            << c << "x" << k;
    }
}

} // namespace
