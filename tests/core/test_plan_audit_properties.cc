/**
 * @file
 * Property harness for the band-plan auditor and the ownership race
 * detector: every randomized net the branch/batch parity suites
 * generate must compile into a plan the auditor proves disjoint — in
 * every backend — and running batches of every size through that plan
 * (with the debug ownership detector armed) must neither trip the
 * detector nor disturb the audited placement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"
#include "mapping/plan_audit.hh"

#include "branch_nets.hh"

namespace
{

using namespace nc;
using core::BackendKind;

std::vector<dnn::QTensor>
randomBatch(unsigned n, unsigned c, unsigned hw, uint64_t seed)
{
    Rng rng(seed);
    std::vector<dnn::QTensor> batch;
    batch.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        batch.push_back(dnn::randomQTensor(rng, c, hw, hw));
    return batch;
}

TEST(PlanAuditProperties, EveryRandomizedNetAuditsCleanInEveryBackend)
{
    Rng rng(0xa0d1);
    std::vector<dnn::Network> nets;
    for (unsigned s = 0; s < 3; ++s)
        nets.push_back(testnets::randomMixedNet(
            "audit-mixed-" + std::to_string(s), 5, 2 + s, rng));
    nets.push_back(testnets::residualNet("audit-residual", 6, 3, 5, 1));
    nets.push_back(
        testnets::residualNet("audit-residual-s2", 8, 2, 4, 2));

    for (const dnn::Network &net : nets) {
        for (BackendKind kind :
             {BackendKind::Functional, BackendKind::Isa,
              BackendKind::Reference}) {
            core::EngineOptions opts;
            opts.backend = kind;
            opts.threads = 3;
            auto model = core::Engine(opts).compile(net);
            // Engine::compile already runs auditPlanOrDie — this
            // re-audits through the reporting API so a regression
            // yields a readable summary instead of process death.
            mapping::AuditReport rep = mapping::auditPlan(model);
            EXPECT_TRUE(rep.ok())
                << net.name << " / " << core::backendKindName(kind)
                << ": " << rep.summary();
            if (kind != BackendKind::Reference) {
                EXPECT_GT(rep.rangesChecked, 0u)
                    << net.name << ": placed model audited no ranges";
            }
        }
    }
}

TEST(PlanAuditProperties, BatchRunsOfEverySizeKeepThePlanClean)
{
    Rng rng(0xa0d2);
    const dnn::Network nets[] = {
        testnets::randomMixedNet("audit-batch-mixed", 5, 2, rng),
        testnets::residualNet("audit-batch-residual", 6, 3, 5, 1),
    };

    for (const dnn::Network &net : nets) {
        core::EngineOptions opts;
        opts.backend = BackendKind::Functional;
        opts.threads = 3;
        auto model = core::Engine(opts).compile(net);
        auto before = mapping::auditPlan(model);
        ASSERT_TRUE(before.ok()) << net.name << ": "
                                 << before.summary();

        // Every batch size regime: single image, partial capacity,
        // and (for small footprints) multi-pass — each runBatch fans
        // images over the pool with the debug ownership detector
        // armed, so a claim violation aborts the test hard.
        for (unsigned batch : {1u, 2u, 7u}) {
            auto inputs =
                randomBatch(batch, model.inputChannels(),
                            model.inputHeight(), 0xb00 + batch);
            auto res = model.runBatch(inputs);
            ASSERT_EQ(res.outputs.size(), inputs.size())
                << net.name << " batch " << batch;
        }

        // Running batches must not have perturbed the audited plan.
        auto after = mapping::auditPlan(model);
        EXPECT_TRUE(after.ok()) << net.name << ": " << after.summary();
        EXPECT_EQ(after.rangesChecked, before.rangesChecked);
    }
}

TEST(PlanAuditProperties, StreamingRegimeBatchesAuditAndRunClean)
{
    // 6 arrays force the streaming regime: stages time-share bands,
    // so the audit's epoch/unit model (not plain disjointness) is
    // what proves this plan — and runBatch must still satisfy the
    // ownership detector while re-pinning bands per stage.
    dnn::Network net;
    net.name = "audit-streaming-batch";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 6, 6, 3, 3, 3, 4)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 6, 6, 4, 1, 1, 3)));

    core::EngineOptions opts;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    opts.config.geometry.banksPerWay = 1;
    opts.config.geometry.subarraysPerBank = 1;
    opts.config.geometry.arraysPerSubarray = 1;
    opts.backend = BackendKind::Functional;
    opts.threads = 3;
    auto model = core::Engine(opts).compile(net);
    ASSERT_FALSE(model.batchBands().resident);

    auto rep = mapping::auditPlan(model);
    ASSERT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.rangesChecked, 0u);

    for (unsigned batch : {1u, 3u}) {
        auto inputs = randomBatch(batch, 3, 6, 0x5c0 + batch);
        auto res = model.runBatch(inputs);
        ASSERT_EQ(res.outputs.size(), inputs.size()) << batch;
    }
    EXPECT_TRUE(mapping::auditPlan(model).ok());
}

} // namespace
