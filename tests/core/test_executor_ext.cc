/** @file Tests for avg-pool, min/max, and in-cache requantization. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/executor.hh"

namespace
{

using namespace nc;
using core::Executor;

dnn::QTensor
randomInput(Rng &rng, unsigned c, unsigned h, unsigned w)
{
    dnn::QTensor t(c, h, w);
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

TEST(ExecutorAvgPool, PowerOfTwoWindowUsesShift)
{
    // 2x2 window: average = sum >> 2, exactly.
    Rng rng(9);
    cache::ComputeCache cc;
    Executor ex(cc);
    auto in = randomInput(rng, 4, 4, 4);

    auto got = ex.avgPool(in, 2, 2, 2);
    ASSERT_EQ(got.height(), 2u);
    for (unsigned c = 0; c < 4; ++c)
        for (unsigned y = 0; y < 2; ++y)
            for (unsigned x = 0; x < 2; ++x) {
                unsigned sum = in.at(c, 2 * y, 2 * x) +
                               in.at(c, 2 * y, 2 * x + 1) +
                               in.at(c, 2 * y + 1, 2 * x) +
                               in.at(c, 2 * y + 1, 2 * x + 1);
                EXPECT_EQ(got.at(c, y, x), sum / 4)
                    << c << "," << y << "," << x;
            }
}

TEST(ExecutorAvgPool, NonPow2WindowUsesDivision)
{
    // 3x3 window: divide by 9 through restoring division (§IV-D:
    // "the divisor is only 4 bits in Inception v3").
    Rng rng(10);
    cache::ComputeCache cc;
    Executor ex(cc);
    auto in = randomInput(rng, 3, 5, 5);

    auto got = ex.avgPool(in, 3, 3, 1);
    ASSERT_EQ(got.height(), 3u);
    for (unsigned c = 0; c < 3; ++c)
        for (unsigned y = 0; y < 3; ++y)
            for (unsigned x = 0; x < 3; ++x) {
                unsigned sum = 0;
                for (unsigned ri = 0; ri < 3; ++ri)
                    for (unsigned si = 0; si < 3; ++si)
                        sum += in.at(c, y + ri, x + si);
                EXPECT_EQ(got.at(c, y, x), sum / 9)
                    << c << "," << y << "," << x;
            }
}

TEST(ExecutorAvgPool, InceptionHeadShape)
{
    // The 8x8 global average of Inception's head: 64 = power of two.
    Rng rng(11);
    cache::ComputeCache cc;
    Executor ex(cc);
    auto in = randomInput(rng, 16, 8, 8);
    auto got = ex.avgPool(in, 8, 8, 1);
    EXPECT_EQ(got.height(), 1u);
    EXPECT_EQ(got.width(), 1u);
    for (unsigned c = 0; c < 16; ++c) {
        unsigned sum = 0;
        for (unsigned y = 0; y < 8; ++y)
            for (unsigned x = 0; x < 8; ++x)
                sum += in.at(c, y, x);
        EXPECT_EQ(got.at(c, 0, 0), sum / 64) << "channel " << c;
    }
}

TEST(ExecutorMinMax, FindsRange)
{
    cache::ComputeCache cc;
    Executor ex(cc);
    auto [mn, mx] = ex.minMax({900, 3, 77, 1024, 3}, 16);
    EXPECT_EQ(mn, 3u);
    EXPECT_EQ(mx, 1024u);
}

TEST(ExecutorMinMax, SingleValue)
{
    cache::ComputeCache cc;
    Executor ex(cc);
    auto [mn, mx] = ex.minMax({42}, 8);
    EXPECT_EQ(mn, 42u);
    EXPECT_EQ(mx, 42u);
}

TEST(ExecutorMinMax, PropertyRandom)
{
    Rng rng(12);
    cache::ComputeCache cc;
    Executor ex(cc);
    for (int t = 0; t < 5; ++t) {
        auto n = static_cast<size_t>(rng.uniformInt(1, 200));
        auto vals = rng.bitVector(n, 20);
        auto [mn, mx] = ex.minMax(vals, 20);
        EXPECT_EQ(mn, *std::min_element(vals.begin(), vals.end()));
        EXPECT_EQ(mx, *std::max_element(vals.begin(), vals.end()));
    }
}

TEST(ExecutorRequantize, TruncatingMultiplyShift)
{
    cache::ComputeCache cc;
    Executor ex(cc);
    std::vector<uint32_t> acc{0, 1000, 123456, 700000};
    uint8_t mult = 191;
    unsigned shift = 19;
    auto q = ex.requantize(acc, mult, shift);
    ASSERT_EQ(q.size(), acc.size());
    for (size_t i = 0; i < acc.size(); ++i) {
        uint64_t want = (uint64_t(acc[i]) * mult) >> shift;
        want = std::min<uint64_t>(want, 255);
        EXPECT_EQ(q[i], want) << "acc " << acc[i];
    }
}

TEST(ExecutorRequantize, BatchesBeyondOneArrayWidth)
{
    Rng rng(13);
    cache::ComputeCache cc;
    Executor ex(cc);
    std::vector<uint32_t> acc(600);
    for (auto &a : acc)
        a = static_cast<uint32_t>(rng.uniformBits(20));
    uint8_t mult = 37;
    unsigned shift = 12;
    auto q = ex.requantize(acc, mult, shift);
    for (size_t i = 0; i < acc.size(); ++i) {
        uint64_t want =
            std::min<uint64_t>((uint64_t(acc[i]) * mult) >> shift,
                               255);
        EXPECT_EQ(q[i], want) << i;
    }
}

TEST(ExecutorRequantize, TracksCpuRequantizeWithinTruncation)
{
    // The CPU helper rounds; the in-cache path truncates. They agree
    // within one LSB, which is the error budget §IV-D tolerates.
    Rng rng(14);
    cache::ComputeCache cc;
    Executor ex(cc);

    double real = 0.00037;
    int32_t mult32;
    int shift32;
    dnn::quantizeMultiplier(real, mult32, shift32);
    // Reduce to an 8-bit multiplier for the in-cache path.
    uint8_t mult8 = static_cast<uint8_t>(mult32 >> 23);
    unsigned shift8 = static_cast<unsigned>(shift32 - 23);

    std::vector<uint32_t> acc(64);
    for (auto &a : acc)
        a = static_cast<uint32_t>(rng.uniformBits(18));
    auto q = ex.requantize(acc, mult8, shift8);
    for (size_t i = 0; i < acc.size(); ++i) {
        uint8_t cpu = dnn::requantize(static_cast<int32_t>(acc[i]),
                                      mult32, shift32, 0);
        EXPECT_NEAR(q[i], cpu, 2) << "acc " << acc[i];
    }
}

} // namespace
