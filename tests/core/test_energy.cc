/** @file Tests for the energy/power meter. */

#include <gtest/gtest.h>

#include "core/energy.hh"

namespace
{

using namespace nc::core;

StageCost
stageWith(uint64_t compute, uint64_t rows, uint64_t dram, uint64_t wire)
{
    StageCost c;
    c.activeArrayCycles = compute;
    c.streamedRows = rows;
    c.dramBytes = dram;
    c.wireBytes = wire;
    return c;
}

TEST(Energy, ComponentsMetered)
{
    EnergyConfig cfg;
    cfg.backgroundPowerW = 0.0;
    std::vector<StageCost> stages{stageWith(1000000, 0, 0, 0)};
    EnergyReport rep = meterEnergy(stages, 1e9, cfg);
    // 1e6 compute cycles x 15.4 pJ = 15.4 uJ.
    EXPECT_NEAR(rep.computeJ, 15.4e-6, 1e-9);
    EXPECT_DOUBLE_EQ(rep.accessJ, 0.0);
    EXPECT_DOUBLE_EQ(rep.totalJ(), rep.computeJ);
}

TEST(Energy, AccessDramWire)
{
    EnergyConfig cfg;
    cfg.backgroundPowerW = 0.0;
    std::vector<StageCost> stages{stageWith(0, 1000, 1000, 1000)};
    EnergyReport rep = meterEnergy(stages, 1e9, cfg);
    EXPECT_NEAR(rep.accessJ, 1000 * 8.6e-12, 1e-15);
    EXPECT_NEAR(rep.dramJ, 1000 * cfg.dramPjPerByte * 1e-12, 1e-15);
    EXPECT_NEAR(rep.wireJ, 1000 * cfg.wirePjPerByte * 1e-12, 1e-15);
}

TEST(Energy, BackgroundScalesWithTime)
{
    EnergyConfig cfg;
    std::vector<StageCost> stages;
    // 1 ms at the default background power.
    EnergyReport rep = meterEnergy(stages, 1e9, cfg);
    EXPECT_NEAR(rep.backgroundJ, cfg.backgroundPowerW * 1e-3, 1e-9);
}

TEST(Energy, AveragePower)
{
    EnergyReport rep;
    rep.computeJ = 0.1;
    rep.backgroundJ = 0.1;
    EXPECT_DOUBLE_EQ(rep.avgPowerW(2.0), 0.1);
    EXPECT_DOUBLE_EQ(rep.avgPowerW(0.0), 0.0);
}

TEST(Energy, MultipleStagesSum)
{
    EnergyConfig cfg;
    cfg.backgroundPowerW = 0.0;
    std::vector<StageCost> stages{stageWith(100, 0, 0, 0),
                                  stageWith(200, 0, 0, 0)};
    EnergyReport rep = meterEnergy(stages, 1.0, cfg);
    EXPECT_NEAR(rep.computeJ, 300 * 15.4e-12, 1e-15);
}

TEST(Energy, DefaultsUseHostNodeArrayEnergy)
{
    EnergyConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.array.computePj, 15.4);
    EXPECT_DOUBLE_EQ(cfg.array.accessPj, 8.6);
}

} // namespace
