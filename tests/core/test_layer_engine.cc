/** @file The ISA path must agree with the ALU path and reference. */

#include <gtest/gtest.h>
#include "bitserial/cost.hh"

#include "common/rng.hh"
#include "core/executor.hh"
#include "core/layer_engine.hh"

namespace
{

using namespace nc;

dnn::QTensor
randomInput(Rng &rng, unsigned c, unsigned h, unsigned w)
{
    dnn::QTensor t(c, h, w);
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

dnn::QWeights
randomWeights(Rng &rng, unsigned m, unsigned c, unsigned r, unsigned s)
{
    dnn::QWeights w(m, c, r, s);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

TEST(LayerEngine, MatchesReferenceExactly)
{
    Rng rng(2025);
    cache::ComputeCache cc;
    core::LayerEngine engine(cc);

    auto in = randomInput(rng, 8, 6, 6);
    auto w = randomWeights(rng, 3, 8, 3, 3);

    unsigned oh, ow, rh, rw;
    auto got = engine.convLayer(in, w, 1, true, oh, ow);
    auto want = dnn::convQuantUnsigned(in, w, 1, true, rh, rw);
    ASSERT_EQ(oh, rh);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << i;
}

TEST(LayerEngine, MatchesDirectAluExecutor)
{
    // Two independent functional paths — macro-op broadcast vs direct
    // ALU calls — must agree bit for bit.
    Rng rng(2026);
    auto in = randomInput(rng, 5, 5, 5);
    auto w = randomWeights(rng, 4, 5, 3, 3);

    cache::ComputeCache cc1, cc2;
    core::LayerEngine engine(cc1);
    core::Executor ex(cc2);

    unsigned oh1, ow1, oh2, ow2;
    auto a = engine.convLayer(in, w, 2, false, oh1, ow1);
    auto b = ex.conv(in, w, 2, false, oh2, ow2);
    ASSERT_EQ(oh1, oh2);
    EXPECT_EQ(a, b);
}

TEST(LayerEngine, LockstepAcrossTheGroup)
{
    Rng rng(2027);
    cache::ComputeCache cc;
    core::LayerEngine engine(cc);

    auto in = randomInput(rng, 4, 4, 4);
    auto w = randomWeights(rng, 6, 4, 3, 3);
    unsigned oh, ow;
    engine.convLayer(in, w, 1, true, oh, ow);

    EXPECT_EQ(engine.groupSize(), 6u);
    EXPECT_EQ(engine.programsIssued(), uint64_t(oh) * ow);
    // Every array consumed exactly the broadcast cycles: lock-step.
    EXPECT_EQ(cc.lockstepCycles(), engine.instructionCycles());
    EXPECT_EQ(cc.totalComputeCycles(),
              engine.instructionCycles() * 6);
}

TEST(LayerEngine, InstructionCyclesMatchCostFormulas)
{
    Rng rng(2028);
    cache::ComputeCache cc;
    core::LayerEngine engine(cc);

    auto in = randomInput(rng, 16, 3, 3);
    auto w = randomWeights(rng, 1, 16, 3, 3);
    unsigned oh, ow;
    engine.convLayer(in, w, 1, false, oh, ow);
    ASSERT_EQ(oh * ow, 1u);

    unsigned red_bits = 24 + 4;
    uint64_t expect =
        bitserial::implCopyCycles(red_bits) + // zero partials
        9 * bitserial::implMacScratchCycles(8, 24) +
        bitserial::implReduceSumCycles(24, 16, 2);
    EXPECT_EQ(engine.instructionCycles(), expect);
}

TEST(LayerEngine, MaxPoolMatchesReference)
{
    Rng rng(2029);
    cache::ComputeCache cc;
    core::LayerEngine engine(cc);
    auto in = randomInput(rng, 6, 6, 6);

    auto got = engine.maxPoolLayer(in, 3, 3, 2);
    auto want = dnn::maxPoolQuant(in, 3, 3, 2, false);
    ASSERT_EQ(got.height(), want.height());
    EXPECT_EQ(got.data(), want.data());
    EXPECT_GT(engine.instructionCycles(), 0u);
}

TEST(LayerEngine, ConvThenPoolPipelineThroughIsa)
{
    Rng rng(2030);
    cache::ComputeCache cc;
    core::LayerEngine engine(cc);

    auto in = randomInput(rng, 4, 6, 6);
    auto w = randomWeights(rng, 1, 4, 3, 3);
    unsigned oh, ow;
    auto acc = engine.convLayer(in, w, 1, true, oh, ow);

    // Requantize on the CPU side (the §IV-D scalar handoff), then
    // pool the result in-cache again.
    dnn::QTensor a(1, oh, ow);
    uint32_t peak = 1;
    for (auto v : acc)
        peak = std::max(peak, v);
    for (size_t i = 0; i < acc.size(); ++i)
        a.data()[i] =
            static_cast<uint8_t>(uint64_t(acc[i]) * 255 / peak);

    auto pooled = engine.maxPoolLayer(a, 2, 2, 2);
    auto want = dnn::maxPoolQuant(a, 2, 2, 2, false);
    EXPECT_EQ(pooled.data(), want.data());
}

TEST(LayerEngine, OneByOneConvSmallest)
{
    cache::ComputeCache cc;
    core::LayerEngine engine(cc);
    dnn::QTensor in(1, 1, 1);
    in.at(0, 0, 0) = 7;
    dnn::QWeights w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = 6;
    unsigned oh, ow;
    auto out = engine.convLayer(in, w, 1, true, oh, ow);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 42u);
}

} // namespace
