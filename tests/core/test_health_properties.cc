/**
 * @file
 * Plan-audit × health interaction, property-style: retire randomized
 * array subsets on shrunken geometries and prove every randomized
 * branch net still compiles past the static plan auditor
 * (mapping::auditPlanOrDie runs on every compile), stays
 * bit-identical to the fault-free reference, and degrades its image
 * slots / residency regime at exactly the documented capacity
 * thresholds.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"

#include "branch_nets.hh"

namespace
{

using namespace nc;
using core::BackendKind;

/** 96 arrays: room for branch nets, small enough that a third of the
 * cache dying visibly moves the capacity arithmetic. */
core::EngineOptions
shrunkenOpts()
{
    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.threads = 3;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    return opts;
}

TEST(HealthProperties, RandomRetirementsAuditCleanAndStayBitExact)
{
    const uint64_t total =
        shrunkenOpts().config.geometry.totalArrays();
    ASSERT_EQ(total, 96u);

    for (uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(0x4ea1 + seed);
        const dnn::Network nets[] = {
            testnets::randomMixedNet("hp-mixed", 5, 3, rng),
            testnets::residualNet("hp-res", 6, 3, 4, 1),
        };
        for (const dnn::Network &net : nets) {
            auto clean =
                core::Engine(shrunkenOpts()).compile(net);
            Rng irng(0xbeef ^ seed);
            auto img = dnn::randomQTensor(irng, clean.inputChannels(),
                                          clean.inputHeight(),
                                          clean.inputWidth());
            auto want = clean.run(img).output.data();
            const uint64_t perImage =
                clean.batchBands().perImageArrays;

            // A random subset of up to a third of the cache dies.
            std::set<uint64_t> kills;
            uint64_t nkills = uint64_t(
                rng.uniformInt(1, int64_t(total / 3)));
            while (kills.size() < nkills)
                kills.insert(
                    uint64_t(rng.uniformInt(0, int64_t(total - 1))));

            auto opts = shrunkenOpts();
            opts.faults.killArrays.assign(kills.begin(),
                                          kills.end());
            // Compiling at all proves the degraded plan passed the
            // static band auditor (it runs on every compile).
            auto model = core::Engine(opts).compile(net);

            auto res = model.run(img);
            EXPECT_EQ(res.output.data(), want)
                << net.name << " seed " << seed << " with "
                << kills.size() << " arrays dead";
            EXPECT_EQ(res.report.arraysRetired, kills.size());

            // Capacity arithmetic: the per-image footprint never
            // changes, the slot count shrinks to what survives.
            const auto &bands = model.batchBands();
            EXPECT_EQ(bands.perImageArrays, perImage);
            const uint64_t usable = total - kills.size();
            ASSERT_EQ(model.computeCache()->usableArrays(), usable);
            if (bands.resident)
                EXPECT_EQ(bands.imageSlots, usable / perImage);
            else
                EXPECT_EQ(bands.imageSlots, 1u);
        }
    }
}

TEST(HealthProperties, DegradationThresholdsAreExact)
{
    // 20 single-array ways; this net pins 5 filter arrays + 1
    // scratch slot per image (the §IV-E over-capacity fixture), so
    // the slot ladder is pure division: 18 usable → 3 slots, 12 → 2,
    // 6 → 1, and 5 — less than one image's footprint — forces the
    // streaming regime.
    dnn::Network net;
    net.name = "hp-thresholds";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 8, 8, 3, 3, 3, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 8, 8, 2, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 2, 1, 1, 3)));

    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.threads = 3;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 20;
    opts.config.geometry.banksPerWay = 1;
    opts.config.geometry.subarraysPerBank = 1;
    opts.config.geometry.arraysPerSubarray = 1;

    auto clean = core::Engine(opts).compile(net);
    ASSERT_TRUE(clean.batchBands().resident);
    ASSERT_EQ(clean.batchBands().perImageArrays, 6u);
    ASSERT_EQ(clean.batchBands().imageSlots, 3u);

    Rng rng(0x7e57);
    std::vector<dnn::QTensor> inputs;
    for (unsigned i = 0; i < 4; ++i)
        inputs.push_back(dnn::randomQTensor(rng, 3, 8, 8));
    std::vector<std::vector<uint8_t>> want;
    for (const auto &in : inputs)
        want.push_back(clean.run(in).output.data());

    struct Step
    {
        uint64_t killed;
        bool resident;
        unsigned slots;
    } ladder[] = {
        {2, true, 3},   // 18 usable: capacity untouched by the loss
        {8, true, 2},   // 12 usable: one slot shed
        {14, true, 1},  // 6 usable: exactly one image fits
        {15, false, 1}, // 5 usable: below one footprint — streaming
    };
    for (const Step &step : ladder) {
        auto fopts = opts;
        for (uint64_t i = 0; i < step.killed; ++i)
            fopts.faults.killArrays.push_back(i);
        auto model = core::Engine(fopts).compile(net);
        EXPECT_EQ(model.batchBands().resident, step.resident)
            << step.killed << " killed";
        EXPECT_EQ(model.batchBands().imageSlots, step.slots)
            << step.killed << " killed";
        for (size_t i = 0; i < inputs.size(); ++i)
            EXPECT_EQ(model.run(inputs[i]).output.data(), want[i])
                << step.killed << " killed, image " << i;
    }

    // One batch on the degraded two-slot plan: time-sliced into two
    // passes, still bit-identical to the fault-free serial loop.
    auto fopts = opts;
    for (uint64_t i = 0; i < 8; ++i)
        fopts.faults.killArrays.push_back(i);
    auto model = core::Engine(fopts).compile(net);
    auto res = model.runBatch(inputs);
    ASSERT_EQ(res.outputs.size(), inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(res.outputs[i].data(), want[i]) << i;
    EXPECT_EQ(res.report.imageSlots, 2u);
    EXPECT_EQ(res.report.batchPasses, 2u);
}

} // namespace
