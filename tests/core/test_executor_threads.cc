/**
 * @file
 * Determinism of the multithreaded executor: any thread count must
 * produce bit-identical outputs AND identical aggregate cycle
 * statistics — parallelism accelerates the simulator, never the
 * modeled machine.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/executor.hh"
#include "core/layer_engine.hh"
#include "common/rng.hh"
#include "dnn/reference.hh"

namespace
{

using namespace nc;
using core::Executor;
using core::LayerEngine;
using dnn::QTensor;
using dnn::QWeights;

QTensor
randomInput(Rng &rng, unsigned c, unsigned h, unsigned w)
{
    QTensor t(c, h, w);
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

QWeights
randomWeights(Rng &rng, unsigned m, unsigned c, unsigned r, unsigned s)
{
    QWeights w(m, c, r, s);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

TEST(ExecutorThreads, ConvIdenticalAcrossThreadCounts)
{
    Rng rng(404);
    QTensor in = randomInput(rng, 8, 7, 7);
    QWeights w = randomWeights(rng, 6, 8, 3, 3);

    cache::ComputeCache cc1, cc4;
    Executor ex1(cc1, 1);
    Executor ex4(cc4, 4);
    EXPECT_EQ(ex1.threads(), 1u);
    EXPECT_EQ(ex4.threads(), 4u);

    unsigned oh1, ow1, oh4, ow4;
    auto a = ex1.conv(in, w, 1, true, oh1, ow1);
    auto b = ex4.conv(in, w, 1, true, oh4, ow4);
    EXPECT_EQ(oh1, oh4);
    EXPECT_EQ(ow1, ow4);
    EXPECT_EQ(a, b);

    // The modeled machine is untouched by simulator parallelism.
    EXPECT_EQ(cc1.lockstepCycles(), cc4.lockstepCycles());
    EXPECT_EQ(cc1.totalComputeCycles(), cc4.totalComputeCycles());
    EXPECT_EQ(cc1.totalAccessCycles(), cc4.totalAccessCycles());
    EXPECT_EQ(cc1.materializedCount(), cc4.materializedCount());
}

TEST(ExecutorThreads, MaxPoolIdenticalAcrossThreadCounts)
{
    Rng rng(405);
    QTensor in = randomInput(rng, 6, 9, 9);

    cache::ComputeCache cc1, cc4;
    Executor ex1(cc1, 1);
    Executor ex4(cc4, 4);

    auto a = ex1.maxPool(in, 3, 3, 2, false);
    auto b = ex4.maxPool(in, 3, 3, 2, false);
    ASSERT_EQ(a.height(), b.height());
    ASSERT_EQ(a.width(), b.width());
    for (unsigned c = 0; c < 6; ++c)
        for (unsigned y = 0; y < a.height(); ++y)
            for (unsigned x = 0; x < a.width(); ++x)
                EXPECT_EQ(a.at(c, y, x), b.at(c, y, x));

    EXPECT_EQ(cc1.lockstepCycles(), cc4.lockstepCycles());
    EXPECT_EQ(cc1.totalComputeCycles(), cc4.totalComputeCycles());
    EXPECT_EQ(cc1.totalAccessCycles(), cc4.totalAccessCycles());

    auto want = dnn::maxPoolQuant(in, 3, 3, 2, false);
    for (unsigned c = 0; c < 6; ++c)
        for (unsigned y = 0; y < a.height(); ++y)
            for (unsigned x = 0; x < a.width(); ++x)
                EXPECT_EQ(a.at(c, y, x), want.at(c, y, x));
}

TEST(ExecutorThreads, LayerEngineIdenticalAcrossThreadCounts)
{
    Rng rng(406);
    QTensor in = randomInput(rng, 5, 5, 5);
    QWeights w = randomWeights(rng, 4, 5, 3, 3);

    cache::ComputeCache cc1, cc4;
    LayerEngine e1(cc1, 1);
    LayerEngine e4(cc4, 4);

    unsigned oh1, ow1, oh4, ow4;
    auto a = e1.convLayer(in, w, 1, true, oh1, ow1);
    auto b = e4.convLayer(in, w, 1, true, oh4, ow4);
    EXPECT_EQ(a, b);
    EXPECT_EQ(e1.instructionCycles(), e4.instructionCycles());
    EXPECT_EQ(cc1.lockstepCycles(), cc4.lockstepCycles());
    EXPECT_EQ(cc1.totalComputeCycles(), cc4.totalComputeCycles());
}

TEST(ExecutorThreads, FcMatchesReference)
{
    Rng rng(407);
    std::vector<uint8_t> in(24);
    for (auto &v : in)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    QWeights w = randomWeights(rng, 10, 24, 1, 1);

    cache::ComputeCache cc;
    Executor ex(cc, 3);
    auto got = ex.fc(in, w);
    ASSERT_EQ(got.size(), 10u);

    QTensor t(24, 1, 1);
    for (unsigned ci = 0; ci < 24; ++ci)
        t.at(ci, 0, 0) = in[ci];
    unsigned oh, ow;
    auto want = dnn::convQuantUnsigned(t, w, 1, false, oh, ow);
    EXPECT_EQ(got, want);
}

TEST(ExecutorThreads, NcThreadsEnvSelectsDefault)
{
    // The constructor argument always wins; 0 defers to NC_THREADS.
    setenv("NC_THREADS", "3", 1);
    cache::ComputeCache cc;
    Executor ex(cc, 0);
    EXPECT_EQ(ex.threads(), 3u);
    unsetenv("NC_THREADS");
}

} // namespace
