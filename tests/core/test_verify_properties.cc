/**
 * @file
 * Property harness for the static program verifier: every randomized
 * net the parity suites generate must compile — in every backend —
 * with the verifier running unconditionally inside Engine::compile,
 * and the compile must prove at least one program per placed model.
 * Compile success IS the bit-exactness property: the verifier fatals
 * on any cycle-sum / CostModel divergence, so a passing compile
 * proves every layer program's static account matches the analytic
 * charge. Both residency regimes are pinned (whole-net resident on
 * the 35MB geometry, streaming on a 6-array one).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/engine.hh"
#include "core/program_verify.hh"

#include "branch_nets.hh"

namespace
{

using namespace nc;
using core::BackendKind;

std::vector<dnn::Network>
randomNets()
{
    Rng rng(0x7e51);
    std::vector<dnn::Network> nets;
    for (unsigned s = 0; s < 3; ++s)
        nets.push_back(testnets::randomMixedNet(
            "verify-mixed-" + std::to_string(s), 5, 2 + s, rng));
    nets.push_back(testnets::residualNet("verify-residual", 6, 3, 5, 1));
    nets.push_back(
        testnets::residualNet("verify-residual-s2", 8, 2, 4, 2));
    return nets;
}

TEST(VerifyProperties, EveryRandomizedNetVerifiesInEveryBackend)
{
    for (const dnn::Network &net : randomNets()) {
        for (BackendKind kind :
             {BackendKind::Functional, BackendKind::Isa,
              BackendKind::Analytic, BackendKind::Reference}) {
            core::EngineOptions opts;
            opts.backend = kind;
            opts.threads = 2;
            // compile() fatals if any layer program fails any of the
            // five check classes — reaching the assertions below is
            // the property.
            auto model = core::Engine(opts).compile(net);
            if (kind != BackendKind::Reference) {
                EXPECT_GT(model.programsVerified(), 0u)
                    << net.name << " / "
                    << core::backendKindName(kind);
            }
            auto rep = model.report(1);
            EXPECT_EQ(rep.programsVerified, model.programsVerified())
                << net.name;
            EXPECT_GE(rep.verifyMs, 0.0) << net.name;
        }
    }
}

TEST(VerifyProperties, PerLayerReportsCoverEveryProgram)
{
    // Drive the analytic walker directly with the reports sink: one
    // report per verified program, each with a non-trivial stats
    // block (the lint CLI renders exactly this).
    core::NeuralCacheConfig cfg;
    for (const dnn::Network &net : randomNets()) {
        std::vector<core::verify::LayerProgramReport> reports;
        core::verify::VerifySummary sum =
            core::verify::verifyNetworkProgramsOrDie(net, cfg,
                                                     &reports);
        EXPECT_EQ(sum.programsVerified, reports.size()) << net.name;
        EXPECT_GT(reports.size(), 0u) << net.name;
        for (const auto &r : reports) {
            EXPECT_GT(r.stats.instructions, 0u) << r.layer;
            EXPECT_GT(r.stats.staticCycles, 0u) << r.layer;
            EXPECT_GT(r.stats.maxLiveRows, 0u) << r.layer;
            EXPECT_FALSE(r.kind.empty()) << r.layer;
        }
    }
}

TEST(VerifyProperties, StreamingRegimeCompilesVerified)
{
    // 6 arrays force the streaming regime: bands time-share across
    // stages, and the verifier must still prove every program against
    // the epoch-audited placement.
    dnn::Network net;
    net.name = "verify-streaming";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 6, 6, 3, 3, 3, 4)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 6, 6, 4, 1, 1, 3)));

    core::EngineOptions opts;
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    opts.config.geometry.banksPerWay = 1;
    opts.config.geometry.subarraysPerBank = 1;
    opts.config.geometry.arraysPerSubarray = 1;
    opts.backend = BackendKind::Functional;
    opts.threads = 2;
    auto model = core::Engine(opts).compile(net);
    ASSERT_FALSE(model.batchBands().resident);
    EXPECT_GT(model.programsVerified(), 0u);
}

TEST(VerifyProperties, ResidentRegimeCompilesVerified)
{
    dnn::Network net = testnets::residualNet("verify-resident", 6, 3,
                                             5, 1);
    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.threads = 2;
    auto model = core::Engine(opts).compile(net);
    ASSERT_TRUE(model.batchBands().resident);
    EXPECT_GT(model.programsVerified(), 0u);
}

} // namespace
