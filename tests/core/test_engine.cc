/**
 * @file
 * The compile-once / run-many Engine API: lifecycle, bit-identical
 * repeated runs, agreement with the legacy per-call entry points,
 * per-layer backend mixing, and hard errors on degenerate input.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/engine.hh"
#include "core/executor.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "dnn/random.hh"

namespace
{

using namespace nc;
using core::BackendKind;

/** conv(3x3, 3->4, SAME) -> maxpool(2x2/2) -> conv(1x1, 4->2). */
dnn::Network
tinyNet()
{
    dnn::Network net;
    net.name = "tiny-cnn";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 8, 8, 3, 3, 3, 4)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 8, 8, 4, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 4, 1, 1, 2)));
    return net;
}

core::ModelWeights
tinyWeights(uint64_t seed)
{
    Rng rng(seed);
    core::ModelWeights mw;
    mw.emplace("conv1", dnn::randomQWeights(rng, 4, 3, 3, 3));
    mw.emplace("head", dnn::randomQWeights(rng, 2, 4, 1, 1));
    return mw;
}

TEST(Engine, RepeatedRunsAreBitIdenticalAndSkipCompileWork)
{
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));
    ASSERT_TRUE(model.functional());

    Rng rng(21);
    auto in = dnn::randomQTensor(rng, 3, 8, 8);

    auto r1 = model.run(in);
    uint64_t cycles_run1 = model.computeCache()->lockstepCycles();
    auto r2 = model.run(in);

    EXPECT_EQ(r1.output.data(), r2.output.data());
    EXPECT_EQ(r1.output.channels(), 2u);
    // Run 2 did exactly the same amount of array work as run 1 —
    // i.e. no filter re-streaming, no re-planning on top.
    EXPECT_EQ(model.computeCache()->lockstepCycles(),
              2 * cycles_run1);

    // Different input, same compiled filters: still deterministic.
    auto in2 = dnn::randomQTensor(rng, 3, 8, 8);
    auto r3 = model.run(in2);
    auto r4 = model.run(in2);
    EXPECT_EQ(r3.output.data(), r4.output.data());
}

TEST(Engine, MatchesLegacyPerCallApiBitExactly)
{
    auto net = tinyNet();
    auto mw = tinyWeights(7);
    core::Engine engine;
    auto model = engine.compile(net, mw);

    Rng rng(33);
    auto in = dnn::randomQTensor(rng, 3, 8, 8);
    auto got = model.run(in);

    // The same pipeline through the legacy per-call entry points,
    // using the engine's compile-time requantization scalars.
    const auto *l1 = model.findLayer("conv1");
    const auto *l2 = model.findLayer("head");
    ASSERT_NE(l1, nullptr);
    ASSERT_NE(l2, nullptr);

    cache::ComputeCache cc;
    core::Executor ex(cc);
    unsigned oh, ow;
    auto acc1 = ex.conv(in, mw.at("conv1"), 1, true, oh, ow);
    auto b1 = ex.requantize(acc1, l1->requantMult, l1->requantShift);
    dnn::QTensor a1(4, oh, ow);
    a1.data() = b1;
    auto p1 = ex.maxPool(a1, 2, 2, 2, false);
    auto acc2 = ex.conv(p1, mw.at("head"), 1, true, oh, ow);
    auto b2 = ex.requantize(acc2, l2->requantMult, l2->requantShift);

    EXPECT_EQ(got.output.data(), b2);
}

TEST(Engine, RunBatchSharesStationaryFilters)
{
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));

    Rng rng(5);
    std::vector<dnn::QTensor> batch;
    for (int i = 0; i < 3; ++i)
        batch.push_back(dnn::randomQTensor(rng, 3, 8, 8));

    auto res = model.runBatch(batch);
    ASSERT_EQ(res.outputs.size(), 3u);
    EXPECT_EQ(res.report.batch, 3u);

    // Each batch element equals its individual run.
    for (size_t i = 0; i < batch.size(); ++i) {
        auto single = model.run(batch[i]);
        EXPECT_EQ(res.outputs[i].data(), single.output.data()) << i;
    }
}

TEST(Engine, ReportCarriesAnalyticAnswerOnFunctionalRuns)
{
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));

    Rng rng(5);
    auto res = model.run(dnn::randomQTensor(rng, 3, 8, 8));

    // One call yields both the tensors and the timing/energy report,
    // and the report matches the legacy analytic facade exactly.
    core::NeuralCache sim;
    auto want = sim.infer(tinyNet());
    EXPECT_DOUBLE_EQ(res.report.latencyPs, want.latencyPs);
    EXPECT_DOUBLE_EQ(res.report.energy.totalJ(), want.energy.totalJ());
    EXPECT_GT(res.report.latencyPs, 0.0);
}

TEST(Engine, AnalyticBackendMatchesLegacyFacade)
{
    auto net = dnn::inceptionV3();

    core::EngineOptions opts;
    opts.backend = BackendKind::Analytic;
    core::Engine engine(opts);
    auto model = engine.compile(net);
    EXPECT_FALSE(model.functional());

    core::NeuralCache sim;
    for (unsigned batch : {1u, 8u, 64u}) {
        auto got = model.report(batch);
        auto want = sim.inferBatch(net, batch);
        EXPECT_DOUBLE_EQ(got.latencyPs, want.latencyPs) << batch;
        EXPECT_DOUBLE_EQ(got.batchPs, want.batchPs) << batch;
        EXPECT_DOUBLE_EQ(got.spillPs, want.spillPs) << batch;
        EXPECT_DOUBLE_EQ(got.energy.totalJ(), want.energy.totalJ())
            << batch;
        ASSERT_EQ(got.stages.size(), want.stages.size());
        for (size_t i = 0; i < got.stages.size(); ++i)
            EXPECT_DOUBLE_EQ(got.stages[i].totalPs(),
                             want.stages[i].totalPs())
                << batch << ":" << i;
    }
}

TEST(Engine, MixedPerLayerBackendsAgreeWithUniform)
{
    auto net = tinyNet();
    auto mw = tinyWeights(7);
    Rng rng(11);
    auto in = dnn::randomQTensor(rng, 3, 8, 8);

    core::Engine uniform;
    auto base = uniform.compile(net, mw).run(in);

    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.layerBackends["conv1"] = BackendKind::Isa;
    opts.layerBackends["head"] = BackendKind::Reference;
    core::Engine mixed(opts);
    auto got = mixed.compile(net, mw).run(in);

    EXPECT_EQ(got.output.data(), base.output.data());
}

TEST(Engine, FullyConnectedFlattensActivations)
{
    dnn::Network net;
    net.name = "conv-fc";
    net.stages.push_back(dnn::singleOpStage(
        "conv", dnn::conv("conv", 4, 4, 2, 3, 3, 3)));
    net.stages.push_back(dnn::singleOpStage(
        "fc", dnn::fullyConnected("fc", 3 * 4 * 4, 5)));

    core::Engine engine;
    auto model = engine.compile(net);

    Rng rng(3);
    auto res = model.run(dnn::randomQTensor(rng, 2, 4, 4));
    EXPECT_EQ(res.output.channels(), 5u);
    EXPECT_EQ(res.output.height(), 1u);
    EXPECT_EQ(res.output.width(), 1u);
}

TEST(Engine, SeededWeightsAreDeterministic)
{
    auto net = tinyNet();
    Rng rng(9);
    auto in = dnn::randomQTensor(rng, 3, 8, 8);

    core::Engine a, b;
    auto ra = a.compile(net).run(in);
    auto rb = b.compile(net).run(in);
    EXPECT_EQ(ra.output.data(), rb.output.data());

    core::EngineOptions opts;
    opts.weightSeed = 1234;
    auto rc = core::Engine(opts).compile(net).run(in);
    EXPECT_NE(rc.output.data(), ra.output.data());
}

TEST(Engine, CompileExposesMappingAndLayoutArtifacts)
{
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));

    const auto *l1 = model.findLayer("conv1");
    ASSERT_NE(l1, nullptr);
    // The §IV-C transposed DRAM image covers every filter byte.
    EXPECT_EQ(l1->dramImage.size(), size_t(4) * 3 * 3 * 3);
    EXPECT_GT(l1->plan.parallelConvs, 0u);
    EXPECT_GE(l1->requantShift, 1u);
    // Layers own disjoint array bands.
    const auto *l2 = model.findLayer("head");
    ASSERT_NE(l2, nullptr);
    EXPECT_GE(l2->baseArray, l1->baseArray + 4);
}

TEST(Engine, ReferenceBackendRunsShapesBeyondTheArrayMapping)
{
    // 300 channels exceed one array's 256 bit lines, so the
    // functional kernels cannot map this layer — but the reference
    // backend is CPU loops and must compile and run it (and reserve
    // no arrays doing so).
    dnn::Network net;
    net.name = "wide";
    net.stages.push_back(dnn::singleOpStage(
        "wide", dnn::conv("wide", 3, 3, 300, 3, 3, 2, 1, false)));

    Rng rng(17);
    core::ModelWeights mw;
    mw.emplace("wide", dnn::randomQWeights(rng, 2, 300, 3, 3));
    auto in = dnn::randomQTensor(rng, 300, 3, 3);

    core::EngineOptions opts;
    opts.backend = BackendKind::Reference;
    core::Engine engine(opts);
    auto model = engine.compile(net, mw);
    auto res = model.run(in);
    EXPECT_EQ(res.output.size(), 2u);
    EXPECT_EQ(model.computeCache()->materializedCount(), 0u);

    unsigned rh, rw;
    auto acc = dnn::convQuantUnsigned(in, mw.at("wide"), 1, false,
                                      rh, rw);
    const auto *l = model.findLayer("wide");
    std::vector<uint8_t> want(acc.size());
    for (size_t i = 0; i < acc.size(); ++i) {
        uint64_t t =
            (uint64_t(acc[i]) * l->requantMult) >> l->requantShift;
        want[i] = static_cast<uint8_t>(t > 0xff ? 0xff : t);
    }
    EXPECT_EQ(res.output.data(), want);
}

TEST(Engine, ParseBackendKindRoundTrips)
{
    for (auto kind :
         {BackendKind::Reference, BackendKind::Functional,
          BackendKind::Isa, BackendKind::Analytic}) {
        BackendKind parsed;
        ASSERT_TRUE(
            core::parseBackendKind(core::backendKindName(kind),
                                   parsed));
        EXPECT_EQ(parsed, kind);
    }
    BackendKind parsed;
    EXPECT_FALSE(core::parseBackendKind("gpu", parsed));
    EXPECT_FALSE(core::parseBackendKind("", parsed));
}

using EngineDeath = ::testing::Test;

TEST(EngineDeath, CompileRejectsEmptyNetwork)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    dnn::Network empty;
    empty.name = "empty";
    core::Engine engine;
    EXPECT_DEATH((void)engine.compile(empty), "empty network");
}

TEST(EngineDeath, CompileRejectsShapeMismatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    dnn::Network net;
    net.name = "mismatch";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 8, 8, 3, 3, 3, 4)));
    // Claims 6 input channels; conv1 produces 4.
    net.stages.push_back(dnn::singleOpStage(
        "conv2", dnn::conv("conv2", 8, 8, 6, 3, 3, 4)));
    core::Engine engine;
    EXPECT_DEATH((void)engine.compile(net), "expects");
}

TEST(EngineDeath, CompileRejectsTypoedLayerOverride)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::EngineOptions opts;
    opts.layerBackends["conv_1"] = BackendKind::Isa; // real: "conv1"
    core::Engine engine(opts);
    EXPECT_DEATH((void)engine.compile(tinyNet(), tinyWeights(7)),
                 "unknown layer");
}

TEST(EngineDeath, CompileRejectsTypoedWeightBank)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rng rng(7);
    core::ModelWeights mw;
    mw.emplace("conv_1", dnn::randomQWeights(rng, 4, 3, 3, 3));
    core::Engine engine;
    EXPECT_DEATH((void)engine.compile(tinyNet(), mw),
                 "not a conv/fc layer");
}

TEST(EngineDeath, RunBatchRejectsEmptyBatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));
    EXPECT_DEATH((void)model.runBatch({}), "empty batch");
}

TEST(EngineDeath, RunBatchNamesOffendingImageIndex)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));
    Rng rng(4);
    std::vector<dnn::QTensor> batch;
    batch.push_back(dnn::randomQTensor(rng, 3, 8, 8));
    batch.push_back(dnn::randomQTensor(rng, 3, 8, 8));
    batch.push_back(dnn::randomQTensor(rng, 5, 8, 8)); // wrong shape
    EXPECT_DEATH((void)model.runBatch(batch),
                 "batch input 2 is 5x8x8");
}

TEST(EngineDeath, RunBatchRejectsAbsurdBatchSize)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));
    // One over the ceiling: the size check fires before any image is
    // validated or executed (all inputs share one tiny tensor).
    std::vector<dnn::QTensor> batch(
        size_t(core::CompiledModel::kMaxBatch) + 1,
        dnn::QTensor(3, 8, 8));
    EXPECT_DEATH((void)model.runBatch(batch), "exceeds the");
}

TEST(EngineDeath, ReportRejectsBatchZeroAndAbsurdBatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::EngineOptions opts;
    opts.backend = BackendKind::Analytic;
    core::Engine engine(opts);
    auto model = engine.compile(tinyNet());
    EXPECT_DEATH((void)model.report(0), "batch 0");
    EXPECT_DEATH(
        (void)model.report(core::CompiledModel::kMaxBatch + 1),
        "exceeds the");
    // The boundary itself is legal.
    EXPECT_GT(model.report(core::CompiledModel::kMaxBatch).batchPs,
              0.0);
}

TEST(EngineDeath, RunRejectsWrongInputShape)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::Engine engine;
    auto model = engine.compile(tinyNet(), tinyWeights(7));
    Rng rng(2);
    auto bad = dnn::randomQTensor(rng, 5, 8, 8);
    EXPECT_DEATH((void)model.run(bad), "expects");
}

} // namespace
