/** @file Tests for the per-layer cost model (§VI-A anchors). */

#include <gtest/gtest.h>

#include "core/cost_model.hh"
#include "dnn/inception_v3.hh"

namespace
{

using namespace nc::core;
using nc::cache::Geometry;
using nc::dnn::conv;
using nc::dnn::maxPool;
using nc::dnn::avgPool;

TEST(CostModel, Conv2bCycleAnchor)
{
    // §VI-A: "Each convolution takes 2784 cycles (236 cycles/MAC x 9
    // + 660 reduction cycles) ... taking 0.0479 ms to finish the
    // convolutions for Neural Cache running at 2.5 GHz."
    CostModel model(Geometry::xeonE5_35MB());
    auto op = conv("Conv2D_2b_3x3", 147, 147, 32, 3, 3, 64).conv;
    auto plan = nc::mapping::planConv(op, model.geometry());

    EXPECT_DOUBLE_EQ(model.macCyclesPerConv(plan), 236.0 * 9);
    EXPECT_DOUBLE_EQ(model.reduceCyclesPerConv(plan), 660.0);

    StageCost cost = model.convCost(op);
    double conv_ms =
        (cost.phases.macPs + cost.phases.reducePs) * nc::picoToMs;
    EXPECT_NEAR(conv_ms, 0.0479, 0.0005);
}

TEST(CostModel, AnalyticModeUsesImplFormulas)
{
    CostConfig cfg;
    cfg.mode = ArithMode::Analytic;
    CostModel model(Geometry::xeonE5_35MB(), cfg);
    auto op = conv("c", 147, 147, 32, 3, 3, 64).conv;
    auto plan = nc::mapping::planConv(op, model.geometry());

    EXPECT_DOUBLE_EQ(
        model.macCyclesPerConv(plan),
        9.0 * nc::bitserial::implMacScratchCycles(8, 24));
    EXPECT_DOUBLE_EQ(model.reduceCyclesPerConv(plan),
                     double(nc::bitserial::implReduceSumCycles(24, 32,
                                                               2)));
}

TEST(CostModel, AnalyticFasterThanPaperButSameShape)
{
    // Our micro-op schedules are leaner than the paper's calibrated
    // constants; both modes must order layers identically.
    CostConfig paper_cfg;
    CostConfig ana_cfg;
    ana_cfg.mode = ArithMode::Analytic;
    CostModel paper(Geometry::xeonE5_35MB(), paper_cfg);
    CostModel ana(Geometry::xeonE5_35MB(), ana_cfg);

    auto heavy = conv("h", 147, 147, 32, 3, 3, 64).conv;
    auto light = conv("l", 8, 8, 2048, 1, 1, 320).conv;

    double ph = paper.convCost(heavy).phases.macPs;
    double pl = paper.convCost(light).phases.macPs;
    double ah = ana.convCost(heavy).phases.macPs;
    double al = ana.convCost(light).phases.macPs;
    EXPECT_LT(ah, ph);
    EXPECT_LT(al, pl);
    EXPECT_GT(ph / pl, 1.0);
    EXPECT_GT(ah / al, 1.0);
}

TEST(CostModel, InterArrayReductionPenalized)
{
    CostConfig cfg;
    cfg.mode = ArithMode::Analytic;
    CostModel model(Geometry::xeonE5_35MB(), cfg);
    auto narrow = conv("n", 17, 17, 512, 7, 1, 192).conv;  // 2 arrays
    auto wide = conv("w", 17, 17, 768, 7, 1, 192).conv;    // 4 arrays
    auto pn = nc::mapping::planConv(narrow, model.geometry());
    auto pw = nc::mapping::planConv(wide, model.geometry());
    ASSERT_TRUE(pn.fitsSenseAmpPair);
    ASSERT_FALSE(pw.fitsSenseAmpPair);
    // Same formula, doubled across-pair penalty for the wide case.
    EXPECT_GT(model.reduceCyclesPerConv(pw),
              model.reduceCyclesPerConv(pn));
}

TEST(CostModel, FilterLoadDominatedByDram)
{
    CostModel model(Geometry::xeonE5_35MB());
    auto op = conv("c", 8, 8, 2048, 1, 1, 2048).conv; // 4 MiB weights
    StageCost cost = model.convCost(op);
    double dram_ps = model.dram().transferPs(op.filterBytes());
    EXPECT_GT(cost.phases.filterLoadPs, dram_ps * 0.99);
    EXPECT_LT(cost.phases.filterLoadPs, dram_ps * 1.1);
}

TEST(CostModel, PoolCostTiny)
{
    // Figure 14: pooling is 0.04% of inference time.
    CostModel model(Geometry::xeonE5_35MB());
    auto pool = maxPool("p", 147, 147, 64, 3, 3, 2).pool;
    StageCost cost = model.poolCost(pool);
    EXPECT_LT(cost.phases.poolPs * nc::picoToMs, 0.01);
    EXPECT_GT(cost.phases.poolPs, 0.0);
}

TEST(CostModel, AvgPoolPaysDivision)
{
    CostModel model(Geometry::xeonE5_35MB());
    auto avg = avgPool("a", 35, 35, 192, 3, 3, 1).pool; // /9: divide
    auto avg_pow2 = avgPool("a2", 8, 8, 2048, 8, 8, 1, false).pool;
    StageCost c1 = model.poolCost(avg);
    StageCost c2 = model.poolCost(avg_pow2);
    EXPECT_GT(c1.phases.poolPs, 0.0);
    EXPECT_GT(c2.phases.poolPs, 0.0);
}

TEST(CostModel, StageCostSumsBranches)
{
    CostModel model(Geometry::xeonE5_35MB());
    auto net = nc::dnn::inceptionV3();
    const auto &mixed5b = net.stages[7];
    ASSERT_EQ(mixed5b.name, "Mixed_5b");
    StageCost st = model.stageCost(mixed5b);

    double sum = 0;
    for (const auto &b : mixed5b.branches)
        for (const auto &op : b.ops)
            sum += op.isConv()
                       ? model.convCost(op.conv).totalPs()
                       : model.poolCost(op.pool).totalPs();
    EXPECT_NEAR(st.totalPs(), sum, sum * 1e-9);
}

TEST(CostModel, PhaseBreakdownAddition)
{
    PhaseBreakdown a, b;
    a.macPs = 1;
    a.quantPs = 2;
    b.macPs = 10;
    b.poolPs = 5;
    a += b;
    EXPECT_DOUBLE_EQ(a.macPs, 11.0);
    EXPECT_DOUBLE_EQ(a.quantPs, 2.0);
    EXPECT_DOUBLE_EQ(a.poolPs, 5.0);
    EXPECT_DOUBLE_EQ(a.totalPs(), 18.0);
}

TEST(CostModel, ArithModeNames)
{
    EXPECT_STREQ(arithModeName(ArithMode::PaperCalibrated),
                 "paper-calibrated");
    EXPECT_STREQ(arithModeName(ArithMode::Analytic), "analytic");
}

} // namespace
