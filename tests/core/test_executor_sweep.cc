/**
 * @file
 * Parameterized functional sweep: the bit-serial executor must match
 * the reference convolution across a grid of layer shapes (channels,
 * filter geometry, stride, padding) — the broad-coverage counterpart
 * of the targeted executor tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/executor.hh"

namespace
{

using namespace nc;

struct Shape
{
    unsigned c, h, w, m, r, s, stride;
    bool same_pad;
};

class ExecutorSweep : public ::testing::TestWithParam<Shape>
{
};

TEST_P(ExecutorSweep, ConvBitExact)
{
    const Shape &sh = GetParam();
    Rng rng(sh.c * 1000 + sh.r * 100 + sh.m * 10 + sh.stride);

    dnn::QTensor in(sh.c, sh.h, sh.w);
    for (auto &v : in.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    dnn::QWeights w(sh.m, sh.c, sh.r, sh.s);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));

    cache::ComputeCache cc;
    core::Executor ex(cc);
    unsigned oh1, ow1, oh2, ow2;
    auto got = ex.conv(in, w, sh.stride, sh.same_pad, oh1, ow1);
    auto want =
        dnn::convQuantUnsigned(in, w, sh.stride, sh.same_pad, oh2,
                               ow2);
    ASSERT_EQ(oh1, oh2);
    ASSERT_EQ(ow1, ow2);
    ASSERT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExecutorSweep,
    ::testing::Values(
        // channel counts around the pow2 padding boundaries
        Shape{1, 4, 4, 1, 1, 1, 1, true},
        Shape{2, 4, 4, 2, 3, 3, 1, true},
        Shape{3, 5, 5, 2, 3, 3, 1, true},
        Shape{4, 5, 5, 1, 3, 3, 2, false},
        Shape{5, 4, 4, 2, 2, 2, 2, false},
        Shape{9, 4, 4, 1, 3, 3, 1, true},
        Shape{16, 4, 4, 2, 1, 1, 1, true},
        Shape{17, 3, 3, 1, 3, 3, 1, false},
        Shape{32, 3, 3, 2, 1, 3, 1, true},
        Shape{64, 3, 3, 1, 3, 1, 1, true},
        // strided + VALID combinations
        Shape{8, 9, 9, 2, 3, 3, 2, false},
        Shape{8, 8, 8, 2, 2, 2, 2, false},
        Shape{8, 7, 9, 1, 3, 3, 2, true},
        // asymmetric windows (the 1x7/7x1 factorized towers)
        Shape{12, 5, 7, 2, 1, 5, 1, true},
        Shape{12, 7, 5, 2, 5, 1, 1, true},
        // wide but shallow (the FC-as-conv corner)
        Shape{128, 1, 1, 3, 1, 1, 1, true},
        Shape{256, 1, 1, 2, 1, 1, 1, true}));

} // namespace
