/** @file Tests for the gem5-style debug trace flags. */

#include <gtest/gtest.h>

#include "common/trace.hh"

namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { nc::trace::reset(); }
    void TearDown() override { nc::trace::reset(); }
};

TEST_F(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(nc::trace::enabled("Controller"));
}

TEST_F(TraceTest, EnableDisable)
{
    nc::trace::enable("Controller");
    EXPECT_TRUE(nc::trace::enabled("Controller"));
    EXPECT_FALSE(nc::trace::enabled("Mapper"));
    nc::trace::disable("Controller");
    EXPECT_FALSE(nc::trace::enabled("Controller"));
}

TEST_F(TraceTest, AllFlagEnablesEverything)
{
    nc::trace::enable("All");
    EXPECT_TRUE(nc::trace::enabled("Controller"));
    EXPECT_TRUE(nc::trace::enabled("anything-at-all"));
}

TEST_F(TraceTest, EnvVariableRead)
{
    setenv("NC_DEBUG", "Mapper,Executor", 1);
    nc::trace::reset();
    EXPECT_TRUE(nc::trace::enabled("Mapper"));
    EXPECT_TRUE(nc::trace::enabled("Executor"));
    EXPECT_FALSE(nc::trace::enabled("Controller"));
    unsetenv("NC_DEBUG");
    nc::trace::reset();
    EXPECT_FALSE(nc::trace::enabled("Mapper"));
}

TEST_F(TraceTest, EnvToleratesEmptyItems)
{
    setenv("NC_DEBUG", "Mapper,,Executor,", 1);
    nc::trace::reset();
    EXPECT_TRUE(nc::trace::enabled("Mapper"));
    EXPECT_TRUE(nc::trace::enabled("Executor"));
    unsetenv("NC_DEBUG");
    nc::trace::reset();
}

TEST_F(TraceTest, MalformedEnvFlagsAreFatal)
{
    // A silently-dropped flag runs the simulation without the trace
    // the user asked for; malformed names must die loudly.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    for (const char *bad : {"Contro ller", "Executor;", "Mapper,-x",
                            "flag!"}) {
        setenv("NC_DEBUG", bad, 1);
        EXPECT_DEATH(
            (nc::trace::reset(),
             (void)nc::trace::enabled("Anything")),
            "NC_DEBUG flag")
            << "NC_DEBUG='" << bad << "'";
    }
    unsetenv("NC_DEBUG");
    nc::trace::reset();
}

TEST_F(TraceTest, DprintfGuarded)
{
    // Must not emit (and must not evaluate incorrectly) when off.
    int evaluations = 0;
    auto probe = [&]() {
        ++evaluations;
        return 1;
    };
    nc_dprintf("Off", "value %d", probe());
    EXPECT_EQ(evaluations, 0);
    nc::trace::enable("On");
    nc_dprintf("On", "value %d", probe());
    EXPECT_EQ(evaluations, 1);
}

} // namespace
