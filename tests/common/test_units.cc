/** @file Unit tests for physical-unit helpers. */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace
{

using namespace nc;

TEST(Units, ClockPeriod)
{
    Clock c{2.5_GHz};
    EXPECT_DOUBLE_EQ(c.periodPs(), 400.0);
    EXPECT_DOUBLE_EQ(c.cyclesToPs(10), 4000.0);
    EXPECT_DOUBLE_EQ(c.cyclesToMs(2.5e9), 1000.0);
}

TEST(Units, FourGigahertz)
{
    Clock c{4.0_GHz};
    EXPECT_DOUBLE_EQ(c.periodPs(), 250.0);
}

TEST(Units, SizeLiterals)
{
    EXPECT_EQ(8_KiB, 8192u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(2_GiB, uint64_t(2) << 30);
    EXPECT_DOUBLE_EQ(bytesToMiB(35 * 1_MiB), 35.0);
}

TEST(Units, Bandwidth)
{
    Bandwidth bw = 10.0_GBps;
    // 10 GB at 10 GB/s takes one second = 1e12 ps.
    EXPECT_DOUBLE_EQ(bw.transferPs(10e9), 1e12);
    EXPECT_DOUBLE_EQ(bw.transferPs(0), 0.0);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(1e12 * picoToSec, 1.0);
    EXPECT_DOUBLE_EQ(1e9 * picoToMs, 1.0);
    EXPECT_DOUBLE_EQ(1e12 * pjToJoule, 1.0);
}

} // namespace
