/** @file Unit tests for the gem5-style logging helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

TEST(Logging, FormatBasic)
{
    EXPECT_EQ(nc::detail::format("x=%d", 42), "x=42");
    EXPECT_EQ(nc::detail::format("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(nc::detail::format("plain"), "plain");
}

TEST(Logging, FormatLongString)
{
    std::string big(500, 'q');
    EXPECT_EQ(nc::detail::format("%s", big.c_str()), big);
}

TEST(Logging, VerboseToggle)
{
    bool initial = nc::verbose();
    nc::setVerbose(false);
    EXPECT_FALSE(nc::verbose());
    nc::setVerbose(true);
    EXPECT_TRUE(nc::verbose());
    nc::setVerbose(initial);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(nc_panic("boom %d", 1), "boom 1");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(nc_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(LoggingDeath, AssertFires)
{
    EXPECT_DEATH(nc_assert(1 == 2, "math broke"), "math broke");
}

TEST(Logging, AssertPassesQuietly)
{
    nc_assert(true, "never shown");
    SUCCEED();
}

} // namespace
