/** @file Unit tests for the deterministic RNG wrapper. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace
{

using namespace nc;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformBits(32), b.uniformBits(32));
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16 && !any_diff; ++i)
        any_diff = a.uniformBits(64) != b.uniformBits(64);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformBitsWidth)
{
    Rng r(7);
    for (unsigned w : {1u, 4u, 8u, 16u, 31u, 64u}) {
        for (int i = 0; i < 100; ++i) {
            uint64_t v = r.uniformBits(w);
            if (w < 64) {
                EXPECT_LT(v, uint64_t(1) << w);
            }
        }
    }
    EXPECT_EQ(r.uniformBits(0), 0u);
}

TEST(Rng, BitVectorShapeAndRange)
{
    Rng r(9);
    auto v = r.bitVector(64, 8);
    EXPECT_EQ(v.size(), 64u);
    for (auto x : v)
        EXPECT_LT(x, 256u);
}

TEST(Rng, UniformRealRange)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformReal(0.25, 0.75);
        EXPECT_GE(v, 0.25);
        EXPECT_LT(v, 0.75);
    }
}

} // namespace
