/**
 * @file
 * The SIMD dispatch ladder: strict NC_SIMD spec parsing
 * (common/simd.hh) and the runtime tier controls behind the Array
 * kernels (sram/kernels.hh).
 *
 * resolveTierSpec is pure — spec string in, tier out, against an
 * explicit "best the host can run" — so the rejection contract is
 * testable on any machine: asking for a tier above the synthetic
 * best must die naming the best tier, regardless of what CPU the
 * suite happens to run on.
 */

#include <gtest/gtest.h>

#include "common/simd.hh"
#include "sram/kernels.hh"

namespace
{

using nc::common::simd::resolveTierSpec;
using nc::common::simd::Tier;
using nc::common::simd::tierName;

TEST(SimdSpec, MissingAndAutoFollowTheHostBest)
{
    EXPECT_EQ(resolveTierSpec(nullptr, Tier::Scalar), Tier::Scalar);
    EXPECT_EQ(resolveTierSpec(nullptr, Tier::Avx512), Tier::Avx512);
    EXPECT_EQ(resolveTierSpec("auto", Tier::Scalar), Tier::Scalar);
    EXPECT_EQ(resolveTierSpec("auto", Tier::Avx2), Tier::Avx2);
}

TEST(SimdSpec, ExactNamesResolveWhenRunnable)
{
    EXPECT_EQ(resolveTierSpec("scalar", Tier::Avx512), Tier::Scalar);
    EXPECT_EQ(resolveTierSpec("avx2", Tier::Avx2), Tier::Avx2);
    EXPECT_EQ(resolveTierSpec("avx512", Tier::Avx512), Tier::Avx512);
    // Asking for less than the host offers is always honoured (the
    // perf baseline's scalar leg depends on it).
    EXPECT_EQ(resolveTierSpec("avx2", Tier::Avx512), Tier::Avx2);
}

TEST(SimdSpec, TierNamesRoundTrip)
{
    for (Tier t : {Tier::Scalar, Tier::Avx2, Tier::Avx512})
        EXPECT_EQ(resolveTierSpec(tierName(t), Tier::Avx512), t);
}

using SimdSpecDeath = ::testing::Test;

TEST(SimdSpecDeath, UnrunnableTierDiesNamingTheHostBest)
{
    // The NC_SIMD=avx512-on-a-narrower-host contract: no silent
    // fallback; the error names what this host can actually do.
    EXPECT_DEATH(resolveTierSpec("avx512", Tier::Avx2),
                 "NC_SIMD='avx512' is not available.*best tier: avx2");
    EXPECT_DEATH(resolveTierSpec("avx512", Tier::Scalar),
                 "best tier: scalar");
    EXPECT_DEATH(resolveTierSpec("avx2", Tier::Scalar),
                 "NC_SIMD='avx2' is not available.*best tier: scalar");
}

TEST(SimdSpecDeath, TyposAndCaseVariantsAreConfigurationErrors)
{
    EXPECT_DEATH(resolveTierSpec("AVX2", Tier::Avx512),
                 "NC_SIMD='AVX2' is not a dispatch tier");
    EXPECT_DEATH(resolveTierSpec(" avx2", Tier::Avx512),
                 "not a dispatch tier");
    EXPECT_DEATH(resolveTierSpec("sse2", Tier::Avx512),
                 "not a dispatch tier");
    EXPECT_DEATH(resolveTierSpec("", Tier::Avx512),
                 "not a dispatch tier");
}

TEST(TierLadder, AvailableTiersRunFromScalarToBest)
{
    auto tiers = nc::sram::kern::availableTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), Tier::Scalar);
    EXPECT_EQ(tiers.back(), nc::sram::kern::bestTier());
    for (size_t i = 1; i < tiers.size(); ++i)
        EXPECT_LT(static_cast<int>(tiers[i - 1]),
                  static_cast<int>(tiers[i]));
}

TEST(TierLadder, ForceTierPinsDispatch)
{
    Tier prev = nc::sram::kern::activeTier();
    for (Tier t : nc::sram::kern::availableTiers()) {
        nc::sram::kern::forceTier(t);
        EXPECT_EQ(nc::sram::kern::activeTier(), t);
    }
    nc::sram::kern::forceTier(prev);
}

using TierLadderDeath = ::testing::Test;

TEST(TierLadderDeath, ForcingAnUnrunnableTierDies)
{
    if (nc::sram::kern::bestTier() == Tier::Avx512)
        GTEST_SKIP() << "host runs every tier";
    EXPECT_DEATH(nc::sram::kern::forceTier(Tier::Avx512),
                 "not available on this host/build.*best tier:");
}

} // namespace
