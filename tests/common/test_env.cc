/**
 * @file
 * Startup rejection of unknown NC_-prefixed environment variables:
 * NC_THREAD=4 must be a hard error naming NC_THREADS, not a silently
 * ignored typo — and the check must be wired into the entry points
 * (ThreadPool construction), not just callable.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"
#include "common/thread_pool.hh"

namespace
{

using namespace nc;

TEST(EnvCheck, KnownAndUnprefixedVariablesPass)
{
    setenv("NC_THREADS", "2", 1);
    setenv("SOME_OTHER_TOOL_OPT", "whatever", 1);
    common::checkEnvOrDie(); // must not die
    unsetenv("NC_THREADS");
    unsetenv("SOME_OTHER_TOOL_OPT");
}

TEST(EnvCheckDeath, TyposDieNamingTheNearestKnownVariable)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    struct Case
    {
        const char *name;
        const char *expect;
    } cases[] = {
        {"NC_THREAD", "did you mean NC_THREADS"},
        {"NC_FAULT", "did you mean NC_FAULTS"},
        {"NC_DEBUGGING", "did you mean NC_DEBUG"},
        {"NC_", "unknown environment variable NC_"},
    };
    for (const auto &[name, expect] : cases) {
        setenv(name, "1", 1);
        EXPECT_DEATH(common::checkEnvOrDie(), expect) << name;
        unsetenv(name);
    }
}

TEST(EnvCheckDeath, ThreadPoolConstructionRunsTheCheck)
{
    // The death-test child re-execs the binary, so checkEnvOnce()'s
    // once-flag is fresh there and the ThreadPool constructor is the
    // first (and fatal) caller.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setenv("NC_TYPO", "1", 1);
    EXPECT_DEATH({ common::ThreadPool pool(1); },
                 "unknown environment variable NC_TYPO");
    unsetenv("NC_TYPO");
}

} // namespace
