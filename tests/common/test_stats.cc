/** @file Unit tests for the stats package. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace
{

using namespace nc;

TEST(Stats, ScalarCounts)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 11u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    Distribution d;
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.sum(), 6.0);
}

TEST(Stats, DistributionEmpty)
{
    Distribution d;
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Stats, GroupDumpSorted)
{
    Scalar a, b;
    a += 5;
    b += 7;
    StatGroup g("unit");
    g.addScalar("zeta", &b);
    g.addScalar("alpha", &a);

    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "unit.alpha 5\nunit.zeta 7\n");
}

TEST(Stats, GroupLookup)
{
    Scalar a;
    a += 3;
    StatGroup g("grp");
    g.addScalar("hits", &a);
    EXPECT_EQ(g.scalarValue("hits"), 3u);
    EXPECT_EQ(g.scalarValue("missing"), 0u);
}

TEST(StatsDeath, NullRegistrationPanics)
{
    StatGroup g("bad");
    EXPECT_DEATH(g.addScalar("s", nullptr), "null scalar");
}

} // namespace
