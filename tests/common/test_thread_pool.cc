/** @file Unit tests for the worker thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hh"

namespace
{

using nc::common::ThreadPool;

TEST(ThreadPool, SizeIsAtLeastOne)
{
    ThreadPool p(0);
    EXPECT_GE(p.size(), 1u);
    ThreadPool p4(4);
    EXPECT_EQ(p4.size(), 4u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        constexpr size_t kN = 1000;
        std::vector<std::atomic<uint32_t>> hits(kN);
        pool.parallelFor(kN, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
    }
}

TEST(ThreadPool, EmptyAndSingleLoops)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallelFor(0, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 0);
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++count;
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(100, [&](size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 99u * 100u / 2);
    }
}

TEST(ThreadPool, DisjointWritesNeedNoSynchronization)
{
    ThreadPool pool(4);
    std::vector<uint64_t> out(4096, 0);
    pool.parallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

} // namespace
