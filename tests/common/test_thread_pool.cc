/** @file Unit tests for the worker thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace
{

using nc::common::ThreadPool;

TEST(ThreadPool, SizeIsAtLeastOne)
{
    ThreadPool p(0);
    EXPECT_GE(p.size(), 1u);
    ThreadPool p4(4);
    EXPECT_EQ(p4.size(), 4u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        constexpr size_t kN = 1000;
        std::vector<std::atomic<uint32_t>> hits(kN);
        pool.parallelFor(kN, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
    }
}

TEST(ThreadPool, EmptyAndSingleLoops)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallelFor(0, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 0);
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++count;
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(100, [&](size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 99u * 100u / 2);
    }
}

TEST(ThreadPool, DisjointWritesNeedNoSynchronization)
{
    ThreadPool pool(4);
    std::vector<uint64_t> out(4096, 0);
    pool.parallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ValidEnvThreadCountIsHonored)
{
    setenv("NC_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    unsetenv("NC_THREADS");
}

TEST(ThreadPool, TaskExceptionPropagatesAndPoolSurvives)
{
    // A throwing task must neither deadlock the join nor kill the
    // process: the first exception surfaces on the caller and the
    // pool stays usable for the next job.
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        bool caught = false;
        try {
            pool.parallelFor(100, [](size_t i) {
                if (i == 37)
                    throw std::runtime_error("task 37 failed");
            });
        } catch (const std::runtime_error &e) {
            caught = true;
            EXPECT_STREQ(e.what(), "task 37 failed");
        }
        EXPECT_TRUE(caught) << threads << " threads";

        // The same pool immediately runs a full clean job.
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(100, [&](size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 99u * 100u / 2) << threads
                                              << " threads";
    }
}

TEST(ThreadPool, NestedParallelForExceptionPropagates)
{
    // Nested parallelFor runs inline in the calling task, so an
    // exception from the inner loop unwinds through the outer task
    // and still reaches the outermost caller exactly once.
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(8,
                                  [&](size_t i) {
                                      pool.parallelFor(4, [&](size_t j) {
                                          if (i == 3 && j == 2)
                                              throw std::runtime_error(
                                                  "inner failure");
                                      });
                                  }),
                 std::runtime_error);

    std::atomic<int> count{0};
    pool.parallelFor(16, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, TaskIdsAreZeroOutsideAndUniquePerTask)
{
    EXPECT_EQ(nc::common::currentTaskId(), 0u);
    ThreadPool pool(4);
    std::mutex mtx;
    std::set<uint64_t> ids;
    pool.parallelFor(64, [&](size_t) {
        uint64_t id = nc::common::currentTaskId();
        std::lock_guard<std::mutex> lk(mtx);
        ids.insert(id);
    });
    EXPECT_EQ(nc::common::currentTaskId(), 0u);
    if (nc::kDebugAsserts) {
        // Debug builds: every task saw its own nonzero identity.
        EXPECT_EQ(ids.size(), 64u);
        EXPECT_EQ(ids.count(0), 0u);
    } else {
        // Release: the identity hook compiles out to the 0 constant.
        EXPECT_EQ(ids.size(), 1u);
        EXPECT_EQ(ids.count(0), 1u);
    }
}

using ThreadPoolDeath = ::testing::Test;

TEST(ThreadPoolDeath, GarbageEnvThreadCountsAreFatal)
{
    // A misread NC_THREADS silently misconfigures every pool in the
    // process, so garbage must die loudly instead of falling back.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    struct Case
    {
        const char *value;
        const char *expect;
    } cases[] = {
        {"abc", "not an integer"},
        {"3abc", "not an integer"},      // trailing junk
        {"", "not an integer"},
        {" 4", "not an integer"},        // no whitespace tolerated
        {"0", "positive thread count"},  // zero after parse
        {"-2", "positive thread count"}, // negative
        {"99999999", "absurdly large"},
        {"99999999999999999999", "absurdly large"}, // ERANGE
    };
    for (const auto &[value, expect] : cases) {
        setenv("NC_THREADS", value, 1);
        EXPECT_DEATH((void)ThreadPool::defaultThreads(), expect)
            << "NC_THREADS='" << value << "'";
        // The pool constructor takes the same path for size 0.
        EXPECT_DEATH(ThreadPool(0), "NC_THREADS")
            << "NC_THREADS='" << value << "'";
    }
    unsetenv("NC_THREADS");
}

} // namespace
