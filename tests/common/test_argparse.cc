/** @file Option parsing: values, spellings, and error messages. */

#include <gtest/gtest.h>

#include "common/argparse.hh"

namespace
{

using nc::common::ArgParser;

/** Helper: run tryParse over a literal argv. */
template <size_t N>
bool
tryParse(ArgParser &p, const char *const (&argv)[N],
         std::string &error)
{
    return p.tryParse(static_cast<int>(N), argv, error);
}

TEST(ArgParser, ParsesSeparateAndEqualsSpellings)
{
    unsigned batch = 1, threads = 0;
    std::string backend = "functional";
    ArgParser p("prog", "test");
    p.addUnsigned("batch", &batch, "images per batch");
    p.addUnsigned("threads", &threads, "worker threads");
    p.addString("backend", &backend, "backend name");

    std::string err;
    const char *argv[] = {"prog", "--batch", "16", "--threads=4",
                          "--backend", "isa"};
    ASSERT_TRUE(tryParse(p, argv, err)) << err;
    EXPECT_EQ(batch, 16u);
    EXPECT_EQ(threads, 4u);
    EXPECT_EQ(backend, "isa");
}

TEST(ArgParser, DefaultsSurviveWhenFlagsAbsent)
{
    unsigned batch = 7;
    ArgParser p("prog", "test");
    p.addUnsigned("batch", &batch, "images per batch");

    std::string err;
    const char *argv[] = {"prog"};
    ASSERT_TRUE(tryParse(p, argv, err));
    EXPECT_EQ(batch, 7u);
}

TEST(ArgParser, RejectsMalformedNumbers)
{
    unsigned batch = 1;
    ArgParser p("prog", "test");
    p.addUnsigned("batch", &batch, "images per batch");

    std::string err;
    for (const char *bad : {"abc", "12x", "-3", ""}) {
        const char *argv[] = {"prog", "--batch", bad};
        EXPECT_FALSE(tryParse(p, argv, err)) << bad;
        EXPECT_NE(err.find("--batch"), std::string::npos) << bad;
    }
    // The target keeps its pre-error value.
    EXPECT_EQ(batch, 1u);
}

TEST(ArgParser, RejectsUnknownAndMissing)
{
    unsigned batch = 1;
    ArgParser p("prog", "test");
    p.addUnsigned("batch", &batch, "images per batch");

    std::string err;
    {
        const char *argv[] = {"prog", "--vatch", "4"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("unknown option"), std::string::npos);
    }
    {
        const char *argv[] = {"prog", "--batch"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("needs a value"), std::string::npos);
    }
    {
        const char *argv[] = {"prog", "stray"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("unexpected argument"), std::string::npos);
    }
}

TEST(ArgParser, FlagsTakeNoValue)
{
    bool verbose = false;
    ArgParser p("prog", "test");
    p.addFlag("verbose", &verbose, "chatty output");

    std::string err;
    {
        const char *argv[] = {"prog", "--verbose"};
        ASSERT_TRUE(tryParse(p, argv, err));
        EXPECT_TRUE(verbose);
    }
    {
        const char *argv[] = {"prog", "--verbose=yes"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("takes no value"), std::string::npos);
    }
}

TEST(ArgParser, Uint64AcceptsLargeSeeds)
{
    uint64_t seed = 0;
    ArgParser p("prog", "test");
    p.addUint64("seed", &seed, "rng seed");

    std::string err;
    const char *argv[] = {"prog", "--seed", "123456789012345"};
    ASSERT_TRUE(tryParse(p, argv, err)) << err;
    EXPECT_EQ(seed, 123456789012345ull);

    unsigned small = 0;
    p.addUnsigned("small", &small, "32-bit value");
    const char *argv2[] = {"prog", "--small", "123456789012345"};
    EXPECT_FALSE(tryParse(p, argv2, err));
}

TEST(ArgParser, UintEnforcesInclusiveBounds)
{
    unsigned port = 0, priority = 0;
    ArgParser p("prog", "test");
    p.addUint("port", &port, "tcp port", 0, 65535);
    p.addUint("priority", &priority, "request priority", 0, 7);

    std::string err;
    {
        // Both bounds are inclusive.
        const char *argv[] = {"prog", "--port", "65535",
                              "--priority=7"};
        ASSERT_TRUE(tryParse(p, argv, err)) << err;
        EXPECT_EQ(port, 65535u);
        EXPECT_EQ(priority, 7u);
    }
    {
        const char *argv[] = {"prog", "--port", "65536"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("--port"), std::string::npos);
        EXPECT_NE(err.find("[0, 65535]"), std::string::npos);
        EXPECT_EQ(port, 65535u); // untouched by the failed parse
    }
    {
        const char *argv[] = {"prog", "--priority", "8"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("[0, 7]"), std::string::npos);
    }
    {
        // Still a strict parse underneath the range check.
        const char *argv[] = {"prog", "--port", "80h"};
        EXPECT_FALSE(tryParse(p, argv, err));
        EXPECT_NE(err.find("--port"), std::string::npos);
    }
}

TEST(ArgParser, UintLowerBoundRejectsZero)
{
    unsigned inflight = 256;
    ArgParser p("prog", "test");
    p.addUint("max-inflight", &inflight, "admission cap", 1, 65536);

    std::string err;
    const char *argv[] = {"prog", "--max-inflight", "0"};
    EXPECT_FALSE(tryParse(p, argv, err));
    EXPECT_NE(err.find("[1, 65536]"), std::string::npos);
    EXPECT_EQ(inflight, 256u);
}

TEST(ArgParserDeathTest, ParseExitsOnOutOfRangeUint)
{
    unsigned port = 0;
    ArgParser p("prog", "test");
    p.addUint("port", &port, "tcp port", 0, 65535);
    const char *argv[] = {"prog", "--port", "70000"};
    EXPECT_EXIT(p.parse(3, argv), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgParser, HelpReturnsFalseWithEmptyError)
{
    unsigned batch = 1;
    ArgParser p("prog", "a description");
    p.addUnsigned("batch", &batch, "images per batch");

    std::string err = "sentinel";
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(tryParse(p, argv, err));
    EXPECT_TRUE(err.empty());

    auto usage = p.usage();
    EXPECT_NE(usage.find("--batch"), std::string::npos);
    EXPECT_NE(usage.find("a description"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

} // namespace
