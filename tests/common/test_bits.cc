/** @file Unit tests for common/bits.hh. */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace
{

using namespace nc;

TEST(Bits, BitExtract)
{
    EXPECT_TRUE(bit(0b1010u, 1));
    EXPECT_FALSE(bit(0b1010u, 0));
    EXPECT_TRUE(bit(uint64_t(1) << 63, 63));
}

TEST(Bits, SetBit)
{
    EXPECT_EQ(setBit(0u, 3, true), 8u);
    EXPECT_EQ(setBit(0xffu, 0, false), 0xfeu);
    EXPECT_EQ(setBit(uint64_t(0), 63, true), uint64_t(1) << 63);
}

TEST(Bits, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xffu);
    EXPECT_EQ(lowMask(64), ~uint64_t(0));
}

TEST(Bits, Truncate)
{
    EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(5, 8), 5);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(256));
    EXPECT_FALSE(isPow2(255));
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(256), 8u);
    EXPECT_EQ(log2Ceil(257), 9u);
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(255), 7u);
    EXPECT_EQ(log2Floor(256), 8u);
}

TEST(Bits, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(1), 1u);
    EXPECT_EQ(roundUpPow2(3), 4u);
    EXPECT_EQ(roundUpPow2(48), 64u);
    EXPECT_EQ(roundUpPow2(2048), 2048u);
}

TEST(Bits, DivCeilAndRoundUp)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(roundUp(10, 4), 12u);
    EXPECT_EQ(roundUp(8, 4), 8u);
}

/** Property sweep: reassembling bits reproduces the value. */
class BitRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BitRoundTrip, ExtractAndRebuild)
{
    uint64_t v = GetParam();
    uint64_t rebuilt = 0;
    for (unsigned i = 0; i < 64; ++i)
        rebuilt = setBit(rebuilt, i, bit(v, i));
    EXPECT_EQ(rebuilt, v);
}

INSTANTIATE_TEST_SUITE_P(Values, BitRoundTrip,
                         ::testing::Values(0u, 1u, 0xdeadbeefu,
                                           ~uint64_t(0),
                                           uint64_t(1) << 63,
                                           0x123456789abcdef0u));

} // namespace
