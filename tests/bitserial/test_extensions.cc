/** @file Tests for equality/search, batch norm, and zero-skip MAC. */

#include <gtest/gtest.h>

#include "bitserial/extensions.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

constexpr unsigned kLanes = 64;

struct Rig
{
    Array arr{256, kLanes};
    RowAllocator rows{256};
    unsigned zrow;

    Rig() : zrow(rows.zeroRow()) {}
};

TEST(EqualCompare, TagMarksEqualLanes)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice s = rig.rows.alloc(1);
    storeVector(rig.arr, a, {5, 9, 0, 255, 128});
    storeVector(rig.arr, b, {5, 8, 0, 255, 129});
    uint64_t cycles = equalCompare(rig.arr, a, b, s);
    EXPECT_EQ(cycles, 8u);
    EXPECT_TRUE(rig.arr.tag().get(0));
    EXPECT_FALSE(rig.arr.tag().get(1));
    EXPECT_TRUE(rig.arr.tag().get(2));
    EXPECT_TRUE(rig.arr.tag().get(3));
    EXPECT_FALSE(rig.arr.tag().get(4));
}

TEST(EqualCompare, LanesBeyondDataCompareZeroEqual)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(4), b = rig.rows.alloc(4);
    VecSlice s = rig.rows.alloc(1);
    storeVector(rig.arr, a, {1});
    storeVector(rig.arr, b, {2});
    equalCompare(rig.arr, a, b, s);
    // Both padded to zero beyond the stored values -> equal.
    EXPECT_TRUE(rig.arr.tag().get(10));
}

TEST(SearchKey, AssociativeMatch)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    storeVector(rig.arr, v, {42, 17, 42, 0, 255, 42});
    uint64_t cycles = searchKey(rig.arr, v, 42);
    EXPECT_EQ(cycles, 8u);
    EXPECT_EQ(matchCount(rig.arr), 3u);
    EXPECT_TRUE(rig.arr.tag().get(0));
    EXPECT_FALSE(rig.arr.tag().get(1));
    EXPECT_TRUE(rig.arr.tag().get(2));
    EXPECT_TRUE(rig.arr.tag().get(5));
}

TEST(SearchKey, ZeroKeyMatchesEmptyLanes)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    storeVector(rig.arr, v, {1, 0, 2});
    searchKey(rig.arr, v, 0);
    // Lane 1 plus every unwritten lane.
    EXPECT_EQ(matchCount(rig.arr), kLanes - 2);
}

TEST(SearchKey, PropertyAgainstScan)
{
    nc::Rng rng(606);
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    auto vals = rng.bitVector(kLanes, 8);
    storeVector(rig.arr, v, vals);
    for (int t = 0; t < 20; ++t) {
        uint64_t key = rng.uniformBits(8);
        searchKey(rig.arr, v, key);
        unsigned want = 0;
        for (unsigned i = 0; i < kLanes; ++i)
            want += vals[i] == key;
        EXPECT_EQ(matchCount(rig.arr), want) << "key " << key;
    }
}

TEST(SearchKeyDeath, KeyWiderThanSlice)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(4);
    EXPECT_DEATH(searchKey(rig.arr, v, 16), "exceeds");
}

TEST(BatchNorm, ScalesShiftsAdds)
{
    // y = ((x * gamma) >> shift) + beta, per lane (per channel).
    Rig rig;
    VecSlice x = rig.rows.alloc(8);
    VecSlice gamma = rig.rows.alloc(8), beta = rig.rows.alloc(8);
    VecSlice prod = rig.rows.alloc(16);
    storeVector(rig.arr, x, {100, 50, 255});
    storeVector(rig.arr, gamma, {128, 64, 255});
    storeVector(rig.arr, beta, {1, 2, 0});

    uint64_t cycles =
        batchNorm(rig.arr, x, gamma, beta, 7, prod, rig.zrow);
    EXPECT_EQ(cycles, implBatchNormCycles(8, 8));
    auto y = loadVector(rig.arr, x);
    EXPECT_EQ(y[0], ((100u * 128u) >> 7) + 1);
    EXPECT_EQ(y[1], ((50u * 64u) >> 7) + 2);
    EXPECT_EQ(y[2], nc::truncate(((255u * 255u) >> 7) + 0, 8));
}

TEST(BatchNorm, PropertyRandomChannels)
{
    nc::Rng rng(31);
    Rig rig;
    VecSlice x = rig.rows.alloc(8);
    VecSlice gamma = rig.rows.alloc(8), beta = rig.rows.alloc(8);
    VecSlice prod = rig.rows.alloc(16);

    auto xv = rng.bitVector(kLanes, 8);
    auto gv = rng.bitVector(kLanes, 8);
    auto bv = rng.bitVector(kLanes, 8);
    storeVector(rig.arr, x, xv);
    storeVector(rig.arr, gamma, gv);
    storeVector(rig.arr, beta, bv);
    batchNorm(rig.arr, x, gamma, beta, 8, prod, rig.zrow);

    auto y = loadVector(rig.arr, x);
    for (unsigned i = 0; i < kLanes; ++i) {
        uint64_t want =
            nc::truncate(((xv[i] * gv[i]) >> 8) + bv[i], 8);
        EXPECT_EQ(y[i], want) << "lane " << i;
    }
}

TEST(MacSkipZero, HitCostsOneCycle)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice acc = rig.rows.alloc(24), scratch = rig.rows.alloc(16);
    storeVector(rig.arr, a, {10, 20});
    storeVector(rig.arr, acc, {7, 8});
    // b is all zero across every lane.
    uint64_t cycles =
        macScratchSkipZero(rig.arr, a, b, acc, scratch, rig.zrow);
    EXPECT_EQ(cycles, implMacSkipHitCycles());
    auto r = loadVector(rig.arr, acc);
    EXPECT_EQ(r[0], 7u);
    EXPECT_EQ(r[1], 8u);
}

TEST(MacSkipZero, MissMatchesMacScratchPlusDetect)
{
    nc::Rng rng(4);
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice acc = rig.rows.alloc(24), scratch = rig.rows.alloc(16);
    auto av = rng.bitVector(kLanes, 8);
    auto bv = rng.bitVector(kLanes, 8);
    bv[3] = 1; // guarantee non-zero somewhere
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, b, bv);
    zero(rig.arr, acc);

    uint64_t cycles =
        macScratchSkipZero(rig.arr, a, b, acc, scratch, rig.zrow);
    EXPECT_EQ(cycles, implMacSkipMissCycles(8, 24));
    auto r = loadVector(rig.arr, acc);
    for (unsigned i = 0; i < kLanes; ++i)
        EXPECT_EQ(r[i], av[i] * bv[i]) << "lane " << i;
}

TEST(MacSkipZero, SingleNonZeroLaneForcesFullCost)
{
    // SIMD semantics: one live lane means every lane pays.
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice acc = rig.rows.alloc(24), scratch = rig.rows.alloc(16);
    std::vector<uint64_t> bv(kLanes, 0);
    bv[kLanes - 1] = 1;
    storeVector(rig.arr, a, std::vector<uint64_t>(kLanes, 3));
    storeVector(rig.arr, b, bv);
    zero(rig.arr, acc);
    uint64_t cycles =
        macScratchSkipZero(rig.arr, a, b, acc, scratch, rig.zrow);
    EXPECT_EQ(cycles, implMacSkipMissCycles(8, 24));
}

TEST(Saturate, ClampsOverflowingLanes)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(16);
    storeVector(rig.arr, v, {255, 256, 1000, 37, 65535});
    uint64_t cycles = saturate(rig.arr, v, 8);
    EXPECT_EQ(cycles, implSaturateCycles(16, 8));
    auto low = loadVector(rig.arr, v.slice(0, 8));
    EXPECT_EQ(low[0], 255u); // fits exactly
    EXPECT_EQ(low[1], 255u); // overflowed
    EXPECT_EQ(low[2], 255u);
    EXPECT_EQ(low[3], 37u);  // untouched
    EXPECT_EQ(low[4], 255u);
}

TEST(Saturate, PropertyMatchesMin)
{
    nc::Rng rng(77);
    Rig rig;
    VecSlice v = rig.rows.alloc(20);
    auto vals = rng.bitVector(kLanes, 20);
    storeVector(rig.arr, v, vals);
    saturate(rig.arr, v, 8);
    auto low = loadVector(rig.arr, v.slice(0, 8));
    for (unsigned i = 0; i < kLanes; ++i)
        EXPECT_EQ(low[i], std::min<uint64_t>(vals[i], 255))
            << "lane " << i;
}

TEST(Negate, TwosComplement)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    storeVector(rig.arr, v, {1, 0, 255, 128, 42});
    uint64_t cycles = negate(rig.arr, v, rig.zrow);
    EXPECT_EQ(cycles, implNegateCycles(8));
    auto r = loadVector(rig.arr, v);
    EXPECT_EQ(r[0], 255u); // -1
    EXPECT_EQ(r[1], 0u);   // -0
    EXPECT_EQ(r[2], 1u);   // -(-1)
    EXPECT_EQ(r[3], 128u); // INT_MIN negates to itself
    EXPECT_EQ(r[4], 214u);
}

TEST(AbsDiff, LaneWiseMagnitude)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice out = rig.rows.alloc(8), s = rig.rows.alloc(8);
    storeVector(rig.arr, a, {10, 3, 200, 77});
    storeVector(rig.arr, b, {3, 10, 255, 77});
    uint64_t cycles = absDiff(rig.arr, a, b, out, s, rig.zrow);
    EXPECT_EQ(cycles, implAbsDiffCycles(8));
    auto r = loadVector(rig.arr, out);
    EXPECT_EQ(r[0], 7u);
    EXPECT_EQ(r[1], 7u);
    EXPECT_EQ(r[2], 55u);
    EXPECT_EQ(r[3], 0u);
}

TEST(AbsDiff, PropertyRandom)
{
    nc::Rng rng(55);
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice out = rig.rows.alloc(8), s = rig.rows.alloc(8);
    auto av = rng.bitVector(kLanes, 8);
    auto bv = rng.bitVector(kLanes, 8);
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, b, bv);
    absDiff(rig.arr, a, b, out, s, rig.zrow);
    auto r = loadVector(rig.arr, out);
    for (unsigned i = 0; i < kLanes; ++i) {
        uint64_t want = av[i] > bv[i] ? av[i] - bv[i] : bv[i] - av[i];
        EXPECT_EQ(r[i], want) << av[i] << " vs " << bv[i];
    }
}

TEST(TagMicroOps, TagOrFoldsOverflowBits)
{
    nc::sram::Array arr(8, 4);
    arr.poke(0, 1, true);
    arr.poke(1, 2, true);
    arr.tagSet(false);
    arr.opTagOr(0);
    arr.opTagOr(1);
    EXPECT_TRUE(arr.tag().get(1));
    EXPECT_TRUE(arr.tag().get(2));
    EXPECT_EQ(arr.tag().popcount(), 2u);
}

TEST(TagMicroOps, AndInvAndXnor)
{
    Array arr(8, 4);
    // row0: 0 1 0 1 ; row1: 0 0 1 1
    arr.poke(0, 1, true);
    arr.poke(0, 3, true);
    arr.poke(1, 2, true);
    arr.poke(1, 3, true);

    arr.tagSet(true);
    arr.opTagAndInv(0); // lanes where row0 == 0 -> 0, 2
    EXPECT_TRUE(arr.tag().get(0) && arr.tag().get(2));
    EXPECT_EQ(arr.tag().popcount(), 2u);

    arr.tagSet(true);
    arr.opTagAndXnor(0, 1); // rows equal -> lanes 0 and 3
    EXPECT_TRUE(arr.tag().get(0) && arr.tag().get(3));
    EXPECT_EQ(arr.tag().popcount(), 2u);
}

} // namespace
