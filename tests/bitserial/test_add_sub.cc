/** @file Property tests for bit-serial addition and subtraction. */

#include <gtest/gtest.h>

#include "bitserial/alu.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

constexpr unsigned kLanes = 64;

struct Rig
{
    Array arr{256, kLanes};
    RowAllocator rows{256};
    unsigned zrow;

    Rig() : zrow(rows.zeroRow()) {}
};

TEST(Add, SmallExample)
{
    // The paper's Figure 4 walk-through: 4-bit vectors added lane-wise.
    Rig rig;
    VecSlice a = rig.rows.alloc(4), b = rig.rows.alloc(4);
    VecSlice out = rig.rows.alloc(5);
    storeVector(rig.arr, a, {7, 1, 15, 0});
    storeVector(rig.arr, b, {9, 1, 15, 0});

    uint64_t cycles = add(rig.arr, a, b, out);
    // n + 1 cycles: n sum bits plus the stored carry (paper §III-B).
    EXPECT_EQ(cycles, 5u);
    auto r = loadVector(rig.arr, out);
    EXPECT_EQ(r[0], 16u);
    EXPECT_EQ(r[1], 2u);
    EXPECT_EQ(r[2], 30u);
    EXPECT_EQ(r[3], 0u);
}

TEST(Add, ModularWhenNoCarryRow)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(4), b = rig.rows.alloc(4);
    VecSlice out = rig.rows.alloc(4);
    storeVector(rig.arr, a, {15});
    storeVector(rig.arr, b, {1});
    uint64_t cycles = add(rig.arr, a, b, out);
    EXPECT_EQ(cycles, 4u);
    EXPECT_EQ(loadVector(rig.arr, out)[0], 0u); // wrapped
}

TEST(Add, InPlaceAccumulate)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    storeVector(rig.arr, a, {100, 20});
    storeVector(rig.arr, b, {55, 200});
    add(rig.arr, a, b, b); // b += a
    auto r = loadVector(rig.arr, b);
    EXPECT_EQ(r[0], 155u);
    EXPECT_EQ(r[1], 220u);
}

TEST(Add, UnevenWidthsViaZeroRow)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(4);
    VecSlice out = rig.rows.alloc(9);
    storeVector(rig.arr, a, {200, 255});
    storeVector(rig.arr, b, {15, 15});
    uint64_t cycles = add(rig.arr, a, b, out, rig.zrow);
    EXPECT_EQ(cycles, 9u);
    auto r = loadVector(rig.arr, out);
    EXPECT_EQ(r[0], 215u);
    EXPECT_EQ(r[1], 270u);
}

TEST(Add, CarryInSupportsIncrement)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), out = rig.rows.alloc(8);
    storeVector(rig.arr, a, {41, 255});
    add(rig.arr, a, VecSlice{rig.zrow, 1}, out, rig.zrow,
        /*pred=*/false, /*carry_in=*/true);
    auto r = loadVector(rig.arr, out);
    EXPECT_EQ(r[0], 42u);
    EXPECT_EQ(r[1], 0u); // 255 + 1 wraps in 8 bits
}

TEST(AddDeath, UnevenWithoutZeroRow)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(4);
    VecSlice out = rig.rows.alloc(8);
    EXPECT_DEATH(add(rig.arr, a, b, out), "zero row");
}

TEST(AddDeath, ShiftedOverlapRejected)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8);
    VecSlice bad{a.base + 2, 8};
    EXPECT_DEATH(add(rig.arr, a, a, bad), "overlap");
}

TEST(Sub, Basic)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice out = rig.rows.alloc(8), scratch = rig.rows.alloc(8);
    storeVector(rig.arr, a, {200, 5, 77});
    storeVector(rig.arr, b, {55, 9, 77});
    uint64_t cycles = sub(rig.arr, a, b, out, scratch);
    EXPECT_EQ(cycles, implSubCycles(8, false));
    auto r = loadVector(rig.arr, out);
    EXPECT_EQ(r[0], 145u);
    EXPECT_EQ(r[1], 252u); // 5 - 9 wraps
    EXPECT_EQ(r[2], 0u);
    // Final carry = no-borrow mask (a >= b).
    EXPECT_TRUE(rig.arr.carry().get(0));
    EXPECT_FALSE(rig.arr.carry().get(1));
    EXPECT_TRUE(rig.arr.carry().get(2));
}

/** Property sweep: add/sub match 2's-complement arithmetic. */
class AddSubProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AddSubProperty, RandomVectorsMatchReference)
{
    unsigned n = GetParam();
    nc::Rng rng(1000 + n);
    Rig rig;
    VecSlice a = rig.rows.alloc(n), b = rig.rows.alloc(n);
    VecSlice sum = rig.rows.alloc(n + 1);
    VecSlice diff = rig.rows.alloc(n), scratch = rig.rows.alloc(n);

    auto av = rng.bitVector(kLanes, n);
    auto bv = rng.bitVector(kLanes, n);
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, b, bv);

    uint64_t c1 = add(rig.arr, a, b, sum);
    EXPECT_EQ(c1, implAddCycles(n, true));
    auto sums = loadVector(rig.arr, sum);
    for (unsigned i = 0; i < kLanes; ++i)
        EXPECT_EQ(sums[i], av[i] + bv[i]) << "lane " << i;

    uint64_t c2 = sub(rig.arr, a, b, diff, scratch);
    EXPECT_EQ(c2, implSubCycles(n, false));
    auto diffs = loadVector(rig.arr, diff);
    for (unsigned i = 0; i < kLanes; ++i)
        EXPECT_EQ(diffs[i], nc::truncate(av[i] - bv[i], n))
            << "lane " << i;
}

INSTANTIATE_TEST_SUITE_P(Widths, AddSubProperty,
                         ::testing::Values(1, 2, 3, 4, 8, 12, 16, 24,
                                           32));

/**
 * Two's-complement arithmetic falls out of the same hardware: the
 * modular add/sub of raw bit patterns is exactly signed arithmetic
 * when the patterns are read back through sign extension.
 */
class SignedProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SignedProperty, AddSubMatchSignedSemantics)
{
    unsigned n = GetParam();
    nc::Rng rng(42 + n);
    Rig rig;
    VecSlice a = rig.rows.alloc(n), b = rig.rows.alloc(n);
    VecSlice sum = rig.rows.alloc(n);
    VecSlice diff = rig.rows.alloc(n), scratch = rig.rows.alloc(n);

    auto av = rng.bitVector(kLanes, n);
    auto bv = rng.bitVector(kLanes, n);
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, b, bv);
    add(rig.arr, a, b, sum);
    sub(rig.arr, a, b, diff, scratch);

    auto sums = loadVector(rig.arr, sum);
    auto diffs = loadVector(rig.arr, diff);
    for (unsigned i = 0; i < kLanes; ++i) {
        int64_t sa = nc::signExtend(av[i], n);
        int64_t sb = nc::signExtend(bv[i], n);
        EXPECT_EQ(nc::signExtend(sums[i], n),
                  nc::signExtend(nc::truncate(uint64_t(sa + sb), n),
                                 n))
            << "lane " << i;
        EXPECT_EQ(nc::signExtend(diffs[i], n),
                  nc::signExtend(nc::truncate(uint64_t(sa - sb), n),
                                 n))
            << "lane " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SignedProperty,
                         ::testing::Values(4, 8, 16));

/** Paper cross-check: our add cost is within one cycle of n+1. */
TEST(AddCost, TracksPaperFormula)
{
    for (unsigned n : {4u, 8u, 16u, 32u}) {
        EXPECT_EQ(implAddCycles(n, true), paperAddCycles(n));
        EXPECT_EQ(implAddCycles(n, false) + 1, paperAddCycles(n));
    }
}

} // namespace
