/** @file Property tests for lane-tree reductions (paper Figure 5). */

#include <gtest/gtest.h>

#include "bitserial/alu.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

TEST(ReduceSum, FourLaneFigure5Example)
{
    Array arr(64, 8);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(6); // 4 data bits + 2 steps of growth
    VecSlice scratch = rows.alloc(5);
    storeVector(arr, acc, {1, 2, 3, 4});

    reduceSum(arr, acc, 4, 4, scratch);
    EXPECT_EQ(loadLane(arr, acc, 0), 10u);
}

TEST(ReduceSum, SingleLaneIsFree)
{
    Array arr(64, 8);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(8);
    VecSlice scratch = rows.alloc(8);
    storeVector(arr, acc, {42});
    uint64_t cycles = reduceSum(arr, acc, 8, 1, scratch);
    EXPECT_EQ(cycles, 0u);
    EXPECT_EQ(loadLane(arr, acc, 0), 42u);
}

TEST(ReduceSum, PairwisePartialSumsAreCorrectEachLevel)
{
    Array arr(64, 8);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(11); // 8 data bits + 3 steps of growth
    VecSlice scratch = rows.alloc(10);
    storeVector(arr, acc, {10, 20, 30, 40, 50, 60, 70, 80});

    AluConfig cfg;
    reduceSum(arr, acc, 8, 8, scratch, cfg);
    EXPECT_EQ(loadLane(arr, acc, 0), 360u);
}

TEST(ReduceSumDeath, NonPowerOfTwo)
{
    Array arr(64, 8);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(8);
    VecSlice scratch = rows.alloc(8);
    EXPECT_DEATH(reduceSum(arr, acc, 4, 3, scratch), "power of two");
}

TEST(ReduceSumDeath, InsufficientHeadroom)
{
    Array arr(64, 8);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(8);
    VecSlice scratch = rows.alloc(16);
    EXPECT_DEATH(reduceSum(arr, acc, 8, 4, scratch), "headroom");
}

/** Property sweep across lane counts (the channel dimension). */
class ReduceProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ReduceProperty, SumsAllLanes)
{
    unsigned lanes = GetParam();
    const unsigned w0 = 8;
    unsigned steps = nc::log2Ceil(lanes);
    nc::Rng rng(lanes);

    Array arr(64, 256);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(w0 + steps);
    VecSlice scratch = rows.alloc(std::max(1u, w0 + steps - 1));

    auto vals = rng.bitVector(lanes, w0);
    storeVector(arr, acc, vals);

    AluConfig cfg;
    uint64_t cycles = reduceSum(arr, acc, w0, lanes, scratch, cfg);
    EXPECT_EQ(cycles,
              implReduceSumCycles(w0, lanes, cfg.moveCyclesPerRow));

    uint64_t want = 0;
    for (auto v : vals)
        want += v;
    EXPECT_EQ(loadLane(arr, acc, 0), want);
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, ReduceProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128,
                                           256));

TEST(ReduceSum, GarbageInUpperLanesDoesNotPollute)
{
    // Values beyond the reduced lane group must not reach lane 0.
    Array arr(64, 16);
    RowAllocator rows(64);
    VecSlice acc = rows.alloc(10);
    VecSlice scratch = rows.alloc(9);
    std::vector<uint64_t> vals(16, 255); // lanes 4.. hold garbage
    vals[0] = 1;
    vals[1] = 2;
    vals[2] = 3;
    vals[3] = 4;
    storeVector(arr, acc, vals);

    reduceSum(arr, acc, 8, 4, scratch);
    EXPECT_EQ(loadLane(arr, acc, 0), 10u);
}

/** Max/min reductions across lanes. */
class ReduceMaxProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ReduceMaxProperty, FindsExtremum)
{
    unsigned lanes = GetParam();
    nc::Rng rng(3 * lanes);

    Array arr(64, 256);
    RowAllocator rows(64);
    VecSlice data = rows.alloc(8);
    VecSlice mv = rows.alloc(8), cmp = rows.alloc(8);

    auto vals = rng.bitVector(lanes, 8);
    storeVector(arr, data, vals);

    AluConfig cfg;
    uint64_t cycles = reduceMax(arr, data, lanes, mv, cmp, false, cfg);
    EXPECT_EQ(cycles,
              implReduceMaxCycles(8, lanes, cfg.moveCyclesPerRow));

    uint64_t want = 0;
    for (auto v : vals)
        want = std::max(want, v);
    EXPECT_EQ(loadLane(arr, data, 0), want);
}

TEST_P(ReduceMaxProperty, FindsMinimum)
{
    unsigned lanes = GetParam();
    nc::Rng rng(7 * lanes + 1);

    Array arr(64, 256);
    RowAllocator rows(64);
    VecSlice data = rows.alloc(8);
    VecSlice mv = rows.alloc(8), cmp = rows.alloc(8);

    auto vals = rng.bitVector(lanes, 8);
    storeVector(arr, data, vals);

    reduceMax(arr, data, lanes, mv, cmp, /*take_min=*/true);

    uint64_t want = 255;
    for (auto v : vals)
        want = std::min(want, v);
    EXPECT_EQ(loadLane(arr, data, 0), want);
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, ReduceMaxProperty,
                         ::testing::Values(2, 4, 8, 32, 128, 256));

} // namespace
