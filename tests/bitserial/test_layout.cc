/** @file Unit tests for slices, the row allocator, and vector I/O. */

#include <gtest/gtest.h>

#include "bitserial/layout.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

TEST(VecSlice, RowsAndSubslices)
{
    VecSlice s{10, 8};
    EXPECT_EQ(s.row(0), 10u);
    EXPECT_EQ(s.row(7), 17u);
    VecSlice sub = s.slice(2, 4);
    EXPECT_EQ(sub.base, 12u);
    EXPECT_EQ(sub.bits, 4u);
}

TEST(VecSlice, Overlap)
{
    VecSlice a{0, 8}, b{8, 8}, c{4, 8};
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_TRUE(a.overlaps(c));
    EXPECT_TRUE(c.overlaps(b));
    EXPECT_TRUE(a.overlaps(a));
}

TEST(RowAllocator, SequentialNonOverlapping)
{
    RowAllocator alloc(64);
    VecSlice a = alloc.alloc(8);
    VecSlice b = alloc.alloc(16);
    EXPECT_EQ(a.base, 0u);
    EXPECT_EQ(b.base, 8u);
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_EQ(alloc.used(), 24u);
    EXPECT_EQ(alloc.remaining(), 40u);
}

TEST(RowAllocator, ZeroRowFromTopAndStable)
{
    RowAllocator alloc(64);
    unsigned z1 = alloc.zeroRow();
    unsigned z2 = alloc.zeroRow();
    EXPECT_EQ(z1, 63u);
    EXPECT_EQ(z1, z2);
    EXPECT_EQ(alloc.remaining(), 63u);
}

TEST(RowAllocator, ResetReclaims)
{
    RowAllocator alloc(16);
    alloc.alloc(10);
    alloc.zeroRow();
    alloc.reset();
    EXPECT_EQ(alloc.used(), 0u);
    EXPECT_EQ(alloc.remaining(), 16u);
}

TEST(RowAllocatorDeath, Exhaustion)
{
    RowAllocator alloc(8);
    alloc.alloc(8);
    EXPECT_EXIT(alloc.alloc(1), ::testing::ExitedWithCode(1),
                "exhausted");
}

TEST(VectorIO, StoreLoadRoundTrip)
{
    Array arr(32, 16);
    VecSlice s{0, 8};
    std::vector<uint64_t> vals{1, 2, 3, 250, 255, 0, 128, 77};
    storeVector(arr, s, vals);

    auto back = loadVector(arr, s);
    ASSERT_EQ(back.size(), 16u);
    for (size_t i = 0; i < vals.size(); ++i)
        EXPECT_EQ(back[i], vals[i]);
    for (size_t i = vals.size(); i < 16; ++i)
        EXPECT_EQ(back[i], 0u);
}

TEST(VectorIO, TransposedBitPlacement)
{
    // Value 0b101 in lane 2: rows base+0 and base+2 hold lane 2 set.
    Array arr(32, 8);
    VecSlice s{4, 3};
    storeVector(arr, s, {0, 0, 0b101});
    EXPECT_TRUE(arr.peek(4, 2));
    EXPECT_FALSE(arr.peek(5, 2));
    EXPECT_TRUE(arr.peek(6, 2));
}

TEST(VectorIO, LoadLane)
{
    Array arr(32, 8);
    VecSlice s{0, 16};
    storeVector(arr, s, {0xabcd, 0x1234});
    EXPECT_EQ(loadLane(arr, s, 0), 0xabcdu);
    EXPECT_EQ(loadLane(arr, s, 1), 0x1234u);
}

TEST(VectorIO, NoCyclesCharged)
{
    Array arr(32, 8);
    VecSlice s{0, 8};
    storeVector(arr, s, {1, 2, 3});
    loadVector(arr, s);
    EXPECT_EQ(arr.computeCycles(), 0u);
    EXPECT_EQ(arr.accessCycles(), 0u);
}

} // namespace
