/** @file Property tests for bit-serial multiply and MAC. */

#include <gtest/gtest.h>

#include "bitserial/alu.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

constexpr unsigned kLanes = 64;

struct Rig
{
    Array arr{256, kLanes};
    RowAllocator rows{256};
    unsigned zrow;

    Rig() : zrow(rows.zeroRow()) {}
};

TEST(Multiply, PaperFigure6Example)
{
    // Figure 6 multiplies 2-bit values; lane set {3x3, 2x1, 1x3, 0x2}.
    Rig rig;
    VecSlice a = rig.rows.alloc(2), b = rig.rows.alloc(2);
    VecSlice p = rig.rows.alloc(4);
    storeVector(rig.arr, a, {3, 2, 1, 0});
    storeVector(rig.arr, b, {3, 1, 3, 2});
    multiply(rig.arr, a, b, p);
    auto r = loadVector(rig.arr, p);
    EXPECT_EQ(r[0], 9u);
    EXPECT_EQ(r[1], 2u);
    EXPECT_EQ(r[2], 3u);
    EXPECT_EQ(r[3], 0u);
}

TEST(Multiply, EightBitExtremes)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice p = rig.rows.alloc(16);
    storeVector(rig.arr, a, {255, 255, 0, 1, 128});
    storeVector(rig.arr, b, {255, 1, 255, 1, 2});
    multiply(rig.arr, a, b, p);
    auto r = loadVector(rig.arr, p);
    EXPECT_EQ(r[0], 65025u);
    EXPECT_EQ(r[1], 255u);
    EXPECT_EQ(r[2], 0u);
    EXPECT_EQ(r[3], 1u);
    EXPECT_EQ(r[4], 256u);
}

TEST(Multiply, MixedWidths)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(4);
    VecSlice p = rig.rows.alloc(12);
    storeVector(rig.arr, a, {200, 255});
    storeVector(rig.arr, b, {15, 15});
    uint64_t cycles = multiply(rig.arr, a, b, p);
    EXPECT_EQ(cycles, implMulCycles(8, 4));
    auto r = loadVector(rig.arr, p);
    EXPECT_EQ(r[0], 3000u);
    EXPECT_EQ(r[1], 3825u);
}

TEST(MultiplyDeath, ProductMustBeExactWidth)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(4), b = rig.rows.alloc(4);
    VecSlice p = rig.rows.alloc(7);
    EXPECT_DEATH(multiply(rig.arr, a, b, p), "product");
}

/** Property sweep over operand widths. */
class MultiplyProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MultiplyProperty, RandomVectorsMatchReference)
{
    unsigned n = GetParam();
    nc::Rng rng(77 + n);
    Rig rig;
    VecSlice a = rig.rows.alloc(n), b = rig.rows.alloc(n);
    VecSlice p = rig.rows.alloc(2 * n);

    auto av = rng.bitVector(kLanes, n);
    auto bv = rng.bitVector(kLanes, n);
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, b, bv);

    uint64_t cycles = multiply(rig.arr, a, b, p);
    EXPECT_EQ(cycles, implMulCycles(n));

    auto r = loadVector(rig.arr, p);
    for (unsigned i = 0; i < kLanes; ++i)
        EXPECT_EQ(r[i], av[i] * bv[i]) << "lane " << i;
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplyProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

TEST(MultiplyCost, WithinPaperEnvelope)
{
    // Our schedule is n^2+4n; the paper quotes n^2+5n-2. For 8-bit
    // operands: 96 vs 102 — agreement within 6%.
    EXPECT_EQ(implMulCycles(8), 96u);
    EXPECT_EQ(paperMulCycles(8), 102u);
    for (unsigned n : {2u, 4u, 8u, 16u}) {
        double ratio = double(implMulCycles(n)) / paperMulCycles(n);
        EXPECT_GT(ratio, 0.80);
        EXPECT_LT(ratio, 1.10);
    }
}

/** MAC variants agree with acc += a*b and with each other. */
class MacProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MacProperty, FusedAndScratchMatch)
{
    unsigned n = GetParam();
    unsigned w = 3 * n; // accumulator with headroom
    nc::Rng rng(5 + n);

    Rig rig;
    VecSlice a = rig.rows.alloc(n), b = rig.rows.alloc(n);
    VecSlice acc1 = rig.rows.alloc(w), acc2 = rig.rows.alloc(w);
    VecSlice scratch = rig.rows.alloc(2 * n);

    auto av = rng.bitVector(kLanes, n);
    auto bv = rng.bitVector(kLanes, n);
    auto iv = rng.bitVector(kLanes, 2 * n); // pre-existing partials
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, b, bv);
    storeVector(rig.arr, acc1, iv);
    storeVector(rig.arr, acc2, iv);

    uint64_t c1 = macFused(rig.arr, a, b, acc1, rig.zrow);
    EXPECT_EQ(c1, implMacFusedCycles(n, w));
    uint64_t c2 =
        macScratch(rig.arr, a, b, acc2, scratch, rig.zrow);
    EXPECT_EQ(c2, implMacScratchCycles(n, w));

    auto r1 = loadVector(rig.arr, acc1);
    auto r2 = loadVector(rig.arr, acc2);
    for (unsigned i = 0; i < kLanes; ++i) {
        uint64_t want = nc::truncate(iv[i] + av[i] * bv[i], w);
        EXPECT_EQ(r1[i], want) << "fused lane " << i;
        EXPECT_EQ(r2[i], want) << "scratch lane " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, MacProperty,
                         ::testing::Values(2, 4, 8));

TEST(Mac, RepeatedAccumulationConvergesToDotProduct)
{
    // Nine 8-bit MACs into a 24-bit partial sum: one conv window's
    // worth of work per lane (paper Figure 10).
    nc::Rng rng(99);
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice acc = rig.rows.alloc(24);
    VecSlice scratch = rig.rows.alloc(16);
    zero(rig.arr, acc);

    std::vector<uint64_t> want(kLanes, 0);
    for (int k = 0; k < 9; ++k) {
        auto av = rng.bitVector(kLanes, 8);
        auto bv = rng.bitVector(kLanes, 8);
        storeVector(rig.arr, a, av);
        storeVector(rig.arr, b, bv);
        macScratch(rig.arr, a, b, acc, scratch, rig.zrow);
        for (unsigned i = 0; i < kLanes; ++i)
            want[i] += av[i] * bv[i];
    }
    auto r = loadVector(rig.arr, acc);
    for (unsigned i = 0; i < kLanes; ++i)
        EXPECT_EQ(r[i], want[i]) << "lane " << i;
}

} // namespace
