/** @file Tests for the closed-form cycle formulas (paper §III-B/C). */

#include <gtest/gtest.h>

#include "bitserial/cost.hh"

namespace
{

using namespace nc::bitserial;

TEST(PaperFormulas, AsPublished)
{
    // §III-B: "Addition takes n + 1".
    EXPECT_EQ(paperAddCycles(8), 9u);
    EXPECT_EQ(paperAddCycles(32), 33u);
    // §III-C: "it takes n^2 + 5n - 2 cycles to finish an n-bit
    // multiplication".
    EXPECT_EQ(paperMulCycles(8), 102u);
    EXPECT_EQ(paperMulCycles(16), 334u);
    // "Division ... takes 1.5n^2 + 5.5n cycles".
    EXPECT_DOUBLE_EQ(paperDivCycles(8), 140.0);
    EXPECT_DOUBLE_EQ(paperDivCycles(4), 46.0);
}

TEST(ImplFormulas, ClosedFormsAreInternallyConsistent)
{
    // Spot values derived in the headers.
    EXPECT_EQ(implCopyCycles(8), 8u);
    EXPECT_EQ(implAddCycles(8, true), 9u);
    EXPECT_EQ(implSubCycles(8, false), 16u);
    EXPECT_EQ(implMulCycles(8), 96u);
    EXPECT_EQ(implMulCycles(4, 2), 6u + 2u * 6u);
    EXPECT_EQ(implMacScratchCycles(8, 24), 120u);
    EXPECT_EQ(implMacFusedCycles(8, 24), 8u * 25u - 28u);
    EXPECT_EQ(implMaxCycles(8), 25u);
    EXPECT_EQ(implReluCycles(8), 9u);
    EXPECT_EQ(implCompareCycles(8), 17u);
}

TEST(ImplFormulas, ReductionGrowsOneBitPerStep)
{
    // 2 lanes: one step at width w0 -> 3*w0 + 1 with 2-cycle moves.
    EXPECT_EQ(implReduceSumCycles(8, 2, 2), 25u);
    // 4 lanes: widths 8 then 9.
    EXPECT_EQ(implReduceSumCycles(8, 4, 2), 25u + 28u);
    // 1 lane: nothing to do.
    EXPECT_EQ(implReduceSumCycles(8, 1, 2), 0u);
    // Reduction over 128 channels of 24-bit partials (the common
    // Inception case) stays in the hundreds of cycles.
    uint64_t r = implReduceSumCycles(24, 128, 2);
    EXPECT_GT(r, 400u);
    EXPECT_LT(r, 700u);
}

TEST(ImplFormulas, ReduceMaxScalesWithSteps)
{
    EXPECT_EQ(implReduceMaxCycles(8, 2, 2), 16u + 25u);
    EXPECT_EQ(implReduceMaxCycles(8, 4, 2), 2 * (16u + 25u));
}

TEST(ImplFormulas, DivisionQuadratic)
{
    // (n + d) init + (d + 1) invert + n * (2d + 4) loop.
    EXPECT_EQ(implDivCycles(8, 4), 12u + 5u + 8u * 12u);
    EXPECT_EQ(implDivCycles(4, 4), 8u + 5u + 4u * 12u);
}

TEST(PaperCrossCheck, OurSchedulesLandNearPublishedCosts)
{
    // The paper's formulas include its own peripheral pipeline
    // details; ours differ by bounded constants, never asymptotics.
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
        EXPECT_EQ(implAddCycles(n, true), paperAddCycles(n));
        double mul_ratio =
            double(implMulCycles(n)) / double(paperMulCycles(n));
        EXPECT_GT(mul_ratio, 0.7) << "n=" << n;
        EXPECT_LT(mul_ratio, 1.2) << "n=" << n;
        double div_ratio =
            double(implDivCycles(n, n)) / paperDivCycles(n);
        EXPECT_GT(div_ratio, 0.8) << "n=" << n;
        EXPECT_LT(div_ratio, 1.8) << "n=" << n;
    }
}

TEST(AluConfig, DefaultMoveCost)
{
    AluConfig cfg;
    EXPECT_EQ(cfg.moveCyclesPerRow, 2u);
}

} // namespace
