/** @file Tests for compare, max/min select, ReLU, and predication. */

#include <gtest/gtest.h>

#include "bitserial/alu.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

constexpr unsigned kLanes = 64;

struct Rig
{
    Array arr{128, kLanes};
    RowAllocator rows{128};
    unsigned zrow;

    Rig() : zrow(rows.zeroRow()) {}
};

TEST(CompareGE, TagHoldsMask)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice s = rig.rows.alloc(8);
    storeVector(rig.arr, a, {5, 9, 7, 0, 255});
    storeVector(rig.arr, b, {9, 5, 7, 1, 255});
    uint64_t cycles = compareGE(rig.arr, a, b, s);
    EXPECT_EQ(cycles, implCompareCycles(8));
    EXPECT_FALSE(rig.arr.tag().get(0));
    EXPECT_TRUE(rig.arr.tag().get(1));
    EXPECT_TRUE(rig.arr.tag().get(2)); // equality counts as >=
    EXPECT_FALSE(rig.arr.tag().get(3));
    EXPECT_TRUE(rig.arr.tag().get(4));
}

TEST(MaxInto, SelectsLaneWise)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice s = rig.rows.alloc(8);
    storeVector(rig.arr, a, {5, 9, 7, 200});
    storeVector(rig.arr, b, {9, 5, 7, 100});
    uint64_t cycles = maxInto(rig.arr, a, b, s);
    EXPECT_EQ(cycles, implMaxCycles(8));
    auto r = loadVector(rig.arr, a);
    EXPECT_EQ(r[0], 9u);
    EXPECT_EQ(r[1], 9u);
    EXPECT_EQ(r[2], 7u);
    EXPECT_EQ(r[3], 200u);
}

TEST(MinInto, SelectsLaneWise)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    VecSlice s = rig.rows.alloc(8);
    storeVector(rig.arr, a, {5, 9, 7, 200});
    storeVector(rig.arr, b, {9, 5, 7, 100});
    minInto(rig.arr, a, b, s);
    auto r = loadVector(rig.arr, a);
    EXPECT_EQ(r[0], 5u);
    EXPECT_EQ(r[1], 5u);
    EXPECT_EQ(r[2], 7u);
    EXPECT_EQ(r[3], 100u);
}

/** Property: max/min match std::max/std::min on random data. */
class MinMaxProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MinMaxProperty, RandomVectors)
{
    unsigned n = GetParam();
    nc::Rng rng(n * 31);
    Rig rig;
    VecSlice a = rig.rows.alloc(n), b = rig.rows.alloc(n);
    VecSlice a2 = rig.rows.alloc(n);
    VecSlice s = rig.rows.alloc(n);

    auto av = rng.bitVector(kLanes, n);
    auto bv = rng.bitVector(kLanes, n);
    storeVector(rig.arr, a, av);
    storeVector(rig.arr, a2, av);
    storeVector(rig.arr, b, bv);

    maxInto(rig.arr, a, b, s);
    minInto(rig.arr, a2, b, s);
    auto mx = loadVector(rig.arr, a);
    auto mn = loadVector(rig.arr, a2);
    for (unsigned i = 0; i < kLanes; ++i) {
        EXPECT_EQ(mx[i], std::max(av[i], bv[i])) << "lane " << i;
        EXPECT_EQ(mn[i], std::min(av[i], bv[i])) << "lane " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, MinMaxProperty,
                         ::testing::Values(1, 4, 8, 16));

TEST(Relu, ZeroesNegativesKeepsPositives)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    // Two's complement bytes: 100, -1 (0xff), 0, -128 (0x80), 127.
    storeVector(rig.arr, v, {100, 0xff, 0, 0x80, 127});
    uint64_t cycles = relu(rig.arr, v);
    EXPECT_EQ(cycles, implReluCycles(8));
    auto r = loadVector(rig.arr, v);
    EXPECT_EQ(r[0], 100u);
    EXPECT_EQ(r[1], 0u);
    EXPECT_EQ(r[2], 0u);
    EXPECT_EQ(r[3], 0u);
    EXPECT_EQ(r[4], 127u);
}

TEST(Relu, PropertyMatchesSignedReference)
{
    nc::Rng rng(404);
    for (unsigned w : {8u, 16u}) {
        Rig rig;
        VecSlice v = rig.rows.alloc(w);
        auto vals = rng.bitVector(kLanes, w);
        storeVector(rig.arr, v, vals);
        relu(rig.arr, v);
        auto r = loadVector(rig.arr, v);
        for (unsigned i = 0; i < kLanes; ++i) {
            int64_t sv = nc::signExtend(vals[i], w);
            uint64_t want = sv < 0 ? 0 : vals[i];
            EXPECT_EQ(r[i], want) << "w=" << w << " lane " << i;
        }
    }
}

TEST(PredicatedCopy, SelectiveWrite)
{
    // The building block of the paper's max-pool data flow: copy only
    // lanes whose mask bit is set.
    Rig rig;
    VecSlice src = rig.rows.alloc(8), dst = rig.rows.alloc(8);
    VecSlice mask = rig.rows.alloc(1);
    storeVector(rig.arr, src, {1, 2, 3, 4});
    storeVector(rig.arr, dst, {9, 9, 9, 9});
    storeVector(rig.arr, mask, {1, 0, 1, 0});

    rig.arr.opLoadTag(mask.row(0));
    copy(rig.arr, src, dst, /*pred=*/true);
    auto r = loadVector(rig.arr, dst);
    EXPECT_EQ(r[0], 1u);
    EXPECT_EQ(r[1], 9u);
    EXPECT_EQ(r[2], 3u);
    EXPECT_EQ(r[3], 9u);
}

TEST(CopyInv, OnesComplement)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8), b = rig.rows.alloc(8);
    storeVector(rig.arr, a, {0x00, 0xff, 0xa5});
    copyInv(rig.arr, a, b);
    auto r = loadVector(rig.arr, b);
    EXPECT_EQ(r[0], 0xffu);
    EXPECT_EQ(r[1], 0x00u);
    EXPECT_EQ(r[2], 0x5au);
}

TEST(Zero, ClearsSlice)
{
    Rig rig;
    VecSlice a = rig.rows.alloc(8);
    storeVector(rig.arr, a, {1, 2, 3});
    uint64_t cycles = zero(rig.arr, a);
    EXPECT_EQ(cycles, implCopyCycles(8));
    for (auto v : loadVector(rig.arr, a))
        EXPECT_EQ(v, 0u);
}

} // namespace
