/** @file Tests for bit-serial division and shifts. */

#include <gtest/gtest.h>

#include "bitserial/alu.hh"
#include "common/rng.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

constexpr unsigned kLanes = 64;

struct Rig
{
    Array arr{256, kLanes};
    RowAllocator rows{256};
    unsigned zrow;

    Rig() : zrow(rows.zeroRow()) {}
};

TEST(ShiftUp, MultipliesByPowerOfTwo)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    storeVector(rig.arr, v, {1, 3, 0x80});
    uint64_t cycles = shiftUp(rig.arr, v, 2);
    EXPECT_EQ(cycles, implShiftCycles(8));
    auto r = loadVector(rig.arr, v);
    EXPECT_EQ(r[0], 4u);
    EXPECT_EQ(r[1], 12u);
    EXPECT_EQ(r[2], 0u); // high bits shift out
}

TEST(ShiftDown, DividesByPowerOfTwo)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    storeVector(rig.arr, v, {64, 65, 3});
    shiftDown(rig.arr, v, 6);
    auto r = loadVector(rig.arr, v);
    EXPECT_EQ(r[0], 1u);
    EXPECT_EQ(r[1], 1u);
    EXPECT_EQ(r[2], 0u);
}

TEST(Shift, WholeWidthClears)
{
    Rig rig;
    VecSlice v = rig.rows.alloc(8);
    storeVector(rig.arr, v, {0xff});
    shiftUp(rig.arr, v, 8);
    EXPECT_EQ(loadVector(rig.arr, v)[0], 0u);
    storeVector(rig.arr, v, {0xff});
    shiftDown(rig.arr, v, 9);
    EXPECT_EQ(loadVector(rig.arr, v)[0], 0u);
}

TEST(Divide, AvgPoolStyleWindowDivision)
{
    // The paper's avg-pool case: sums divided by a 4-bit window size.
    Rig rig;
    VecSlice num = rig.rows.alloc(16), den = rig.rows.alloc(4);
    VecSlice quot = rig.rows.alloc(16);
    VecSlice rwork = rig.rows.alloc(20);
    VecSlice twork = rig.rows.alloc(5), dwork = rig.rows.alloc(5);

    storeVector(rig.arr, num, {81, 90, 9000, 8, 0});
    storeVector(rig.arr, den, {9, 9, 9, 9, 9});
    uint64_t cycles =
        divide(rig.arr, num, den, quot, rwork, twork, dwork);
    EXPECT_EQ(cycles, implDivCycles(16, 4));

    auto q = loadVector(rig.arr, quot);
    EXPECT_EQ(q[0], 9u);
    EXPECT_EQ(q[1], 10u);
    EXPECT_EQ(q[2], 1000u);
    EXPECT_EQ(q[3], 0u);
    EXPECT_EQ(q[4], 0u);

    // Remainder sits in the low divisor-width rows of rwork.
    auto r = loadVector(rig.arr, rwork.slice(0, 4));
    EXPECT_EQ(r[0], 0u);
    EXPECT_EQ(r[3], 8u);
}

/** Property sweep: random dividend/divisor pairs. */
class DivideProperty : public ::testing::TestWithParam<
                           std::tuple<unsigned, unsigned>>
{
};

TEST_P(DivideProperty, MatchesIntegerDivision)
{
    auto [n, d] = GetParam();
    nc::Rng rng(n * 100 + d);

    Rig rig;
    VecSlice num = rig.rows.alloc(n), den = rig.rows.alloc(d);
    VecSlice quot = rig.rows.alloc(n);
    VecSlice rwork = rig.rows.alloc(n + d);
    VecSlice twork = rig.rows.alloc(d + 1), dwork = rig.rows.alloc(d + 1);

    auto nv = rng.bitVector(kLanes, n);
    std::vector<uint64_t> dv(kLanes);
    for (auto &x : dv)
        x = rng.uniformInt(1, (int64_t(1) << d) - 1); // no div-by-zero
    storeVector(rig.arr, num, nv);
    storeVector(rig.arr, den, dv);

    uint64_t cycles =
        divide(rig.arr, num, den, quot, rwork, twork, dwork);
    EXPECT_EQ(cycles, implDivCycles(n, d));

    auto q = loadVector(rig.arr, quot);
    auto r = loadVector(rig.arr, rwork.slice(0, d));
    for (unsigned i = 0; i < kLanes; ++i) {
        EXPECT_EQ(q[i], nv[i] / dv[i])
            << nv[i] << " / " << dv[i] << " lane " << i;
        EXPECT_EQ(r[i], nv[i] % dv[i])
            << nv[i] << " % " << dv[i] << " lane " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DivideProperty,
    ::testing::Values(std::make_tuple(4u, 4u), std::make_tuple(8u, 4u),
                      std::make_tuple(8u, 8u), std::make_tuple(16u, 4u),
                      std::make_tuple(12u, 6u),
                      std::make_tuple(16u, 8u)));

TEST(Divide, ByOneAndBySelf)
{
    Rig rig;
    VecSlice num = rig.rows.alloc(8), den = rig.rows.alloc(8);
    VecSlice quot = rig.rows.alloc(8);
    VecSlice rwork = rig.rows.alloc(16);
    VecSlice twork = rig.rows.alloc(9), dwork = rig.rows.alloc(9);

    storeVector(rig.arr, num, {200, 200});
    storeVector(rig.arr, den, {1, 200});
    divide(rig.arr, num, den, quot, rwork, twork, dwork);
    auto q = loadVector(rig.arr, quot);
    EXPECT_EQ(q[0], 200u);
    EXPECT_EQ(q[1], 1u);
}

} // namespace
