/**
 * @file
 * End-to-end integration through the public compile-once / run-many
 * API: a small quantized CNN compiles into a CompiledModel, executes
 * entirely through bit-serial array operations, matches both the
 * reference pipeline and the legacy per-call entry points exactly,
 * and answers timing from the same call. This mirrors the paper's
 * trace-matching verification of its cycle-accurate simulator (§V).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/engine.hh"
#include "core/executor.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "dnn/random.hh"

namespace
{

using namespace nc;

/** conv(3x3, 6->4, SAME) -> maxpool(2x2/2) -> conv(1x1, 4->2). */
dnn::Network
integrationNet()
{
    dnn::Network net;
    net.name = "integration-cnn";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 8, 8, 6, 3, 3, 4)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 8, 8, 4, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 4, 1, 1, 2)));
    return net;
}

core::ModelWeights
integrationWeights(Rng &rng)
{
    core::ModelWeights mw;
    mw.emplace("conv1",
               dnn::randomQWeights(
                   rng, 4, 6, 3, 3,
                   dnn::QuantParams::fromRange(-0.5f, 0.5f)));
    mw.emplace("head",
               dnn::randomQWeights(
                   rng, 2, 4, 1, 1,
                   dnn::QuantParams::fromRange(-0.5f, 0.5f)));
    return mw;
}

TEST(EndToEnd, CompiledModelBitExactAgainstReferencePipeline)
{
    Rng rng(2024);
    auto net = integrationNet();
    auto mw = integrationWeights(rng);
    auto img = dnn::randomQTensor(
        rng, 6, 8, 8, dnn::QuantParams::fromRange(0.f, 1.f));

    core::Engine engine;
    auto model = engine.compile(net, mw);
    auto got = model.run(img);

    // The same pipeline, step by step, through the reference
    // executors plus the engine's compile-time requant scalars.
    const auto *l1 = model.findLayer("conv1");
    const auto *l2 = model.findLayer("head");
    ASSERT_NE(l1, nullptr);
    ASSERT_NE(l2, nullptr);

    unsigned rh, rw;
    auto acc_ref = dnn::convQuantUnsigned(img, mw.at("conv1"), 1,
                                          true, rh, rw);
    dnn::QTensor a1(4, rh, rw);
    for (size_t i = 0; i < acc_ref.size(); ++i) {
        uint64_t t = (uint64_t(acc_ref[i]) * l1->requantMult) >>
                     l1->requantShift;
        a1.data()[i] = static_cast<uint8_t>(t > 0xff ? 0xff : t);
    }
    auto p_ref = dnn::maxPoolQuant(a1, 2, 2, 2, false);
    auto acc2_ref = dnn::convQuantUnsigned(p_ref, mw.at("head"), 1,
                                           true, rh, rw);
    std::vector<uint8_t> want(acc2_ref.size());
    for (size_t i = 0; i < acc2_ref.size(); ++i) {
        uint64_t t = (uint64_t(acc2_ref[i]) * l2->requantMult) >>
                     l2->requantShift;
        want[i] = static_cast<uint8_t>(t > 0xff ? 0xff : t);
    }

    EXPECT_EQ(got.output.data(), want);

    // The whole pipeline really ran in the arrays.
    ASSERT_NE(model.computeCache(), nullptr);
    EXPECT_GT(model.computeCache()->lockstepCycles(), 0u);
    EXPECT_GT(model.computeCache()->materializedCount(), 0u);
}

TEST(EndToEnd, CompileOnceRunManyMatchesLegacyPerCallApi)
{
    Rng rng(2031);
    auto net = integrationNet();
    auto mw = integrationWeights(rng);
    auto img = dnn::randomQTensor(rng, 6, 8, 8);

    core::Engine engine;
    auto model = engine.compile(net, mw);

    // Run the compiled model repeatedly: bit-identical every time.
    auto r1 = model.run(img);
    auto r2 = model.run(img);
    auto r3 = model.run(img);
    EXPECT_EQ(r1.output.data(), r2.output.data());
    EXPECT_EQ(r1.output.data(), r3.output.data());

    // And identical to the legacy per-call API wiring the three old
    // entry points together by hand (which re-streams filters and
    // re-derives layouts on every call — the cost the new API
    // amortizes away).
    const auto *l1 = model.findLayer("conv1");
    const auto *l2 = model.findLayer("head");
    cache::ComputeCache cc;
    core::Executor ex(cc);
    unsigned oh, ow;
    auto acc1 = ex.conv(img, mw.at("conv1"), 1, true, oh, ow);
    auto b1 = ex.requantize(acc1, l1->requantMult, l1->requantShift);
    dnn::QTensor a1(4, oh, ow);
    a1.data() = b1;
    auto p1 = ex.maxPool(a1, 2, 2, 2, false);
    auto acc2 = ex.conv(p1, mw.at("head"), 1, true, oh, ow);
    auto b2 = ex.requantize(acc2, l2->requantMult, l2->requantShift);
    EXPECT_EQ(r1.output.data(), b2);
}

TEST(EndToEnd, TimingAndFunctionModelsAgreeOnMacCost)
{
    // The analytic cost model's per-conv MAC cycles must equal what
    // the functional executor actually spends on one window's MACs.
    Rng rng(7);
    cache::ComputeCache cc;
    core::Executor ex(cc);

    auto img = dnn::randomQTensor(rng, 16, 3, 3);
    auto w = dnn::randomQWeights(rng, 1, 16, 3, 3);
    unsigned oh, ow;
    ex.conv(img, w, 1, false, oh, ow); // single 3x3 window
    ASSERT_EQ(oh * ow, 1u);

    core::CostConfig cfg;
    cfg.mode = core::ArithMode::Analytic;
    core::CostModel model(cc.geometry(), cfg);
    auto op = dnn::conv("probe", 3, 3, 16, 3, 3, 1, 1, false).conv;
    auto plan = mapping::planConv(op, cc.geometry());

    uint64_t mac_cycles = 9 * bitserial::implMacScratchCycles(8, 24);
    EXPECT_DOUBLE_EQ(model.macCyclesPerConv(plan),
                     double(mac_cycles));
    // Executor adds zeroing + reduction on top of the MACs.
    EXPECT_GT(ex.lockstepCycles(), mac_cycles);
}

TEST(EndToEnd, WholeStackRunsOnInceptionStem)
{
    // The first real Inception layer shape (scaled down spatially to
    // keep the functional simulation fast) through the functional
    // engine, and the full Inception v3 through the analytic engine.
    Rng rng(31);
    dnn::Network stem;
    stem.name = "inception-stem";
    stem.stages.push_back(dnn::singleOpStage(
        "Conv2d_1a_3x3",
        dnn::conv("Conv2d_1a_3x3", 9, 9, 3, 3, 3, 8, 2, false)));

    core::ModelWeights mw;
    mw.emplace("Conv2d_1a_3x3", dnn::randomQWeights(rng, 8, 3, 3, 3));
    auto img = dnn::randomQTensor(rng, 3, 9, 9);

    core::Engine engine;
    auto model = engine.compile(stem, mw);
    auto got = model.run(img);

    unsigned rh, rw;
    auto acc = dnn::convQuantUnsigned(img, mw.at("Conv2d_1a_3x3"), 2,
                                      false, rh, rw);
    const auto *l = model.findLayer("Conv2d_1a_3x3");
    ASSERT_NE(l, nullptr);
    std::vector<uint8_t> want(acc.size());
    for (size_t i = 0; i < acc.size(); ++i) {
        uint64_t t =
            (uint64_t(acc[i]) * l->requantMult) >> l->requantShift;
        want[i] = static_cast<uint8_t>(t > 0xff ? 0xff : t);
    }
    EXPECT_EQ(got.output.data(), want);

    core::EngineOptions opts;
    opts.backend = core::BackendKind::Analytic;
    auto full = core::Engine(opts).compile(dnn::inceptionV3());
    auto rep = full.report();
    EXPECT_GT(rep.latencyMs(), 1.0);
    EXPECT_LT(rep.latencyMs(), 20.0);
}

} // namespace
