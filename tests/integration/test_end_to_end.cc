/**
 * @file
 * End-to-end integration: a small quantized CNN executes entirely
 * through bit-serial array operations (conv -> relu-equivalent
 * requantize -> maxpool -> conv) and matches the reference pipeline
 * exactly; timing and mapping come from the same public API the
 * benches use. This mirrors the paper's trace-matching verification
 * of its cycle-accurate simulator (§V).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/executor.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

namespace
{

using namespace nc;

dnn::QTensor
randomInput(Rng &rng, unsigned c, unsigned h, unsigned w)
{
    dnn::QTensor t(c, h, w, dnn::QuantParams::fromRange(0.f, 1.f));
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

dnn::QWeights
randomWeights(Rng &rng, unsigned m, unsigned c, unsigned r, unsigned s)
{
    dnn::QWeights w(m, c, r, s,
                    dnn::QuantParams::fromRange(-0.5f, 0.5f));
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

/** Requantize raw accumulators back to uint8 via the shared helper. */
dnn::QTensor
requantizeAcc(const std::vector<uint32_t> &acc, unsigned m, unsigned oh,
              unsigned ow)
{
    uint32_t peak = 1;
    for (auto a : acc)
        peak = std::max(peak, a);
    int32_t mult;
    int shift;
    dnn::quantizeMultiplier(255.0 / peak, mult, shift);

    dnn::QTensor out(m, oh, ow);
    for (unsigned mi = 0; mi < m; ++mi)
        for (unsigned y = 0; y < oh; ++y)
            for (unsigned x = 0; x < ow; ++x) {
                auto a = static_cast<int32_t>(
                    acc[(size_t(mi) * oh + y) * ow + x]);
                out.at(mi, y, x) = dnn::requantize(a, mult, shift, 0);
            }
    return out;
}

TEST(EndToEnd, TwoLayerCnnBitExactAgainstReference)
{
    Rng rng(2024);
    cache::ComputeCache cc;
    core::Executor ex(cc);

    // Layer 1: 3x3 conv, 6 -> 4 channels, SAME.
    dnn::QTensor img = randomInput(rng, 6, 8, 8);
    dnn::QWeights w1 = randomWeights(rng, 4, 6, 3, 3);

    unsigned oh, ow, rh, rw;
    auto acc_hw = ex.conv(img, w1, 1, true, oh, ow);
    auto acc_ref = dnn::convQuantUnsigned(img, w1, 1, true, rh, rw);
    ASSERT_EQ(acc_hw, acc_ref);

    // Requantize both identically (CPU-side scalars, paper §IV-D).
    dnn::QTensor a1 = requantizeAcc(acc_hw, 4, oh, ow);

    // Layer 2: 2x2/2 max pool, executed in-cache vs reference.
    auto p_hw = ex.maxPool(a1, 2, 2, 2, false);
    auto p_ref = dnn::maxPoolQuant(a1, 2, 2, 2, false);
    ASSERT_EQ(p_hw.data(), p_ref.data());

    // Layer 3: 1x1 conv squeeze to 2 channels.
    dnn::QWeights w2 = randomWeights(rng, 2, 4, 1, 1);
    unsigned oh2, ow2, rh2, rw2;
    auto out_hw = ex.conv(p_hw, w2, 1, true, oh2, ow2);
    auto out_ref =
        dnn::convQuantUnsigned(p_ref, w2, 1, true, rh2, rw2);
    ASSERT_EQ(out_hw, out_ref);

    // The whole pipeline really ran in the arrays.
    EXPECT_GT(ex.lockstepCycles(), 0u);
    EXPECT_GT(cc.materializedCount(), 0u);
}

TEST(EndToEnd, TimingAndFunctionModelsAgreeOnMacCost)
{
    // The analytic cost model's per-conv MAC cycles must equal what
    // the functional executor actually spends on one window's MACs.
    Rng rng(7);
    cache::ComputeCache cc;
    core::Executor ex(cc);

    dnn::QTensor img = randomInput(rng, 16, 3, 3);
    dnn::QWeights w = randomWeights(rng, 1, 16, 3, 3);
    unsigned oh, ow;
    ex.conv(img, w, 1, false, oh, ow); // single 3x3 window
    ASSERT_EQ(oh * ow, 1u);

    core::CostConfig cfg;
    cfg.mode = core::ArithMode::Analytic;
    core::CostModel model(cc.geometry(), cfg);
    auto op = dnn::conv("probe", 3, 3, 16, 3, 3, 1, 1, false).conv;
    auto plan = mapping::planConv(op, cc.geometry());

    uint64_t mac_cycles = 9 * bitserial::implMacScratchCycles(8, 24);
    EXPECT_DOUBLE_EQ(model.macCyclesPerConv(plan),
                     double(mac_cycles));
    // Executor adds zeroing + reduction on top of the MACs.
    EXPECT_GT(ex.lockstepCycles(), mac_cycles);
}

TEST(EndToEnd, WholeStackRunsOnInceptionStem)
{
    // Run the first real Inception layer shape (scaled down spatially
    // to keep the functional simulation fast) through the executor
    // and the timing model.
    Rng rng(31);
    cache::ComputeCache cc;
    core::Executor ex(cc);

    dnn::QTensor img = randomInput(rng, 3, 9, 9);
    dnn::QWeights w = randomWeights(rng, 8, 3, 3, 3);
    unsigned oh, ow, rh, rw;
    auto got = ex.conv(img, w, 2, false, oh, ow);
    auto want = dnn::convQuantUnsigned(img, w, 2, false, rh, rw);
    ASSERT_EQ(got, want);

    core::NeuralCache sim;
    auto rep = sim.infer(dnn::inceptionV3());
    EXPECT_GT(rep.latencyMs(), 1.0);
    EXPECT_LT(rep.latencyMs(), 20.0);
}

} // namespace
