/**
 * @file
 * Failure injection: what happens when bit cells or latches are
 * disturbed.
 *
 * The paper's circuit work exists to make multi-row activation safe
 * (6-sigma Monte Carlo, lowered RWL voltage); the architectural model
 * assumes those guarantees hold. These tests flip bits deliberately
 * and check the blast radius is what the transposed layout predicts —
 * a single bit-cell fault stays confined to its lane, a zero-row
 * fault poisons padding-dependent ops, and a carry-latch disturbance
 * offsets exactly one LSB — documenting *why* the design needs its
 * robustness margins.
 */

#include <gtest/gtest.h>

#include "bitserial/alu.hh"
#include "common/rng.hh"
#include "core/executor.hh"

namespace
{

using namespace nc;
namespace bs = bitserial;

TEST(FaultInjection, BitCellFaultIsConfinedToItsLane)
{
    Rng rng(1);
    sram::Array good(64, 32), bad(64, 32);
    bs::RowAllocator rows(64);
    bs::VecSlice a = rows.alloc(8), b = rows.alloc(8);
    bs::VecSlice sum = rows.alloc(9);

    auto av = rng.bitVector(32, 8);
    auto bv = rng.bitVector(32, 8);
    for (sram::Array *arr : {&good, &bad}) {
        bs::storeVector(*arr, a, av);
        bs::storeVector(*arr, b, bv);
    }
    // Disturb one cell of operand A in lane 5.
    bad.poke(a.row(3), 5, !bad.peek(a.row(3), 5));

    bs::add(good, a, b, sum);
    bs::add(bad, a, b, sum);
    auto gv = bs::loadVector(good, sum);
    auto xv = bs::loadVector(bad, sum);
    for (unsigned lane = 0; lane < 32; ++lane) {
        if (lane == 5)
            EXPECT_NE(gv[lane], xv[lane]);
        else
            EXPECT_EQ(gv[lane], xv[lane]) << "lane " << lane;
    }
}

TEST(FaultInjection, FilterFaultPerturbsOnlyThatBatch)
{
    // Flip one filter bit of batch 1; batches 0 and 2 (other arrays)
    // must be untouched — weight stationarity isolates M's.
    Rng rng(2);
    dnn::QTensor in(4, 4, 4);
    for (auto &v : in.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    dnn::QWeights w(3, 4, 3, 3);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));

    unsigned oh, ow;
    cache::ComputeCache ref_cc;
    auto ref = core::Executor(ref_cc).conv(in, w, 1, true, oh, ow);

    dnn::QWeights wf = w;
    wf.at(1, 2, 1, 1) ^= 0x10; // one flipped weight bit
    cache::ComputeCache cc;
    auto faulty = core::Executor(cc).conv(in, wf, 1, true, oh, ow);

    size_t per_m = size_t(oh) * ow;
    bool batch1_changed = false;
    for (size_t i = 0; i < ref.size(); ++i) {
        size_t m = i / per_m;
        if (m == 1) {
            batch1_changed |= ref[i] != faulty[i];
        } else {
            EXPECT_EQ(ref[i], faulty[i]) << "output " << i;
        }
    }
    EXPECT_TRUE(batch1_changed);
}

TEST(FaultInjection, ZeroRowCorruptionPoisonsPaddedAdds)
{
    // The reserved all-zero word line pads uneven operands; if it is
    // disturbed, uneven adds silently gain the stuck bit's value.
    sram::Array arr(64, 8);
    bs::RowAllocator rows(64);
    unsigned zrow = rows.zeroRow();
    bs::VecSlice a = rows.alloc(8), b = rows.alloc(4);
    bs::VecSlice out = rows.alloc(9);
    bs::storeVector(arr, a, {100, 100});
    bs::storeVector(arr, b, {1, 1});

    bs::add(arr, a, b, out, zrow);
    EXPECT_EQ(bs::loadLane(arr, out, 0), 101u);

    arr.poke(zrow, 0, true); // stuck-at-one in lane 0
    bs::add(arr, a, b, out, zrow);
    // Lane 0 absorbs the stuck bit in every padded position
    // (bits 4..7 of the 8-bit extension): +0xF0.
    EXPECT_EQ(bs::loadLane(arr, out, 0), 101u + 0xF0u);
    EXPECT_EQ(bs::loadLane(arr, out, 1), 101u);
}

TEST(FaultInjection, CarryLatchDisturbanceShiftsByOneLsb)
{
    sram::Array arr(64, 8);
    bs::RowAllocator rows(64);
    bs::VecSlice a = rows.alloc(8), b = rows.alloc(8);
    bs::VecSlice out = rows.alloc(8);
    bs::storeVector(arr, a, {10, 20});
    bs::storeVector(arr, b, {5, 6});

    // A disturbed carry latch at operation start = carry-in 1.
    arr.carrySet(true);
    for (unsigned j = 0; j < 8; ++j)
        arr.opAdd(a.row(j), b.row(j), out.row(j));
    EXPECT_EQ(bs::loadLane(arr, out, 0), 16u); // 15 + 1
    EXPECT_EQ(bs::loadLane(arr, out, 1), 27u); // 26 + 1
}

TEST(FaultInjection, TagDisturbanceFlipsPredicationPolarity)
{
    // Predicated ops write where tag = 1; a flipped tag bit turns a
    // masked lane into a written one and vice versa.
    sram::Array arr(64, 4);
    bs::RowAllocator rows(64);
    bs::VecSlice mask = rows.alloc(1);
    bs::VecSlice dst = rows.alloc(8);
    bs::storeVector(arr, mask, {1, 0, 1, 0});
    bs::storeVector(arr, dst, {9, 9, 9, 9});

    arr.opLoadTag(mask.row(0));
    auto tag = arr.tag();
    tag.set(1, true); // disturbance
    // Model the disturbed latch by reloading it through a poked row.
    arr.poke(mask.row(0), 1, true);
    arr.opLoadTag(mask.row(0));

    bs::zero(arr, dst, /*pred=*/true);
    EXPECT_EQ(bs::loadLane(arr, dst, 0), 0u);
    EXPECT_EQ(bs::loadLane(arr, dst, 1), 0u); // wrongly written
    EXPECT_EQ(bs::loadLane(arr, dst, 3), 9u); // still masked
}

} // namespace
