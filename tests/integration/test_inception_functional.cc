/**
 * @file
 * Whole-network functional Inception v3.
 *
 * The paper's headline claim is in-cache inference of Inception v3;
 * this suite pins the functional (bit-serial) execution of the full
 * topology — every mixed block shape, the SAME-padded in-block
 * average pools, the split-tail towers of Mixed_7b/7c, the packed
 * 2048-channel 1x1s, the channel-chunked 3x3s, and the global-average
 * + FC head — bit-for-bit against the reference CPU loops, and
 * bit-stable across worker-thread counts.
 *
 * The end-to-end run uses the reduced-resolution build (75x75 input,
 * identical topology and channel widths — see dnn::inceptionV3):
 * simulating every bit-serial MAC of the 299x299 network is ~70x more
 * work for zero additional coverage. The full-resolution network is
 * still compiled functionally to prove no layer falls back.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/inception_v3.hh"
#include "dnn/random.hh"

namespace
{

using namespace nc;
using core::BackendKind;

TEST(InceptionFunctional, ReducedNetMatchesReferenceAcrossThreads)
{
    dnn::Network net = dnn::inceptionV3(75);
    Rng rng(0x1ce);
    auto in = dnn::randomQTensor(rng, 3, 75, 75);

    // Ground truth: the reference-backend engine (CPU loops, same
    // compiled weights since both engines share the weight seed).
    std::vector<uint8_t> golden;
    {
        core::EngineOptions opts;
        opts.backend = BackendKind::Reference;
        opts.threads = 1;
        core::Engine engine(opts);
        auto res = engine.compile(net).run(in);
        golden = res.output.data();
        ASSERT_EQ(golden.size(), 1001u);
    }

    // Debug/sanitizer builds simulate ~10x slower; they keep the
    // multithreaded leg (the interesting one for a sanitizer — the
    // branch fan-out) and leave the serial/parallel equivalence sweep
    // to the release lane and the branch-parity suite.
    std::vector<unsigned> thread_counts = {1u, 3u};
    if (nc::kDebugAsserts)
        thread_counts = {3u};

    for (unsigned threads : thread_counts) {
        core::EngineOptions opts;
        opts.backend = BackendKind::Functional;
        opts.threads = threads;
        core::Engine engine(opts);
        auto model = engine.compile(net);

        // Every stage must be functional — no analytic fallback.
        ASSERT_TRUE(model.functional());
        size_t ops = 0;
        for (const auto &stage : net.stages)
            for (const auto &branch : stage.branches)
                ops += branch.ops.size();
        ASSERT_EQ(model.compiledLayers().size(), ops);
        for (const auto &layer : model.compiledLayers()) {
            EXPECT_EQ(layer.backend, BackendKind::Functional)
                << layer.op.name();
            if (layer.op.isConv()) {
                EXPECT_TRUE(layer.funcConv.has_value())
                    << layer.op.name();
            }
        }

        auto res = model.run(in);
        EXPECT_EQ(res.output.data(), golden)
            << "functional output diverged with " << threads
            << " worker threads";
        // The analytic report rides along on the same call.
        EXPECT_GT(res.report.latencyPs, 0.0);
    }
}

TEST(InceptionFunctional, FullResolutionCompilesFullyFunctional)
{
    // The published 299x299 network: compilation must place every
    // one of the 20 stages' layers on the functional path (the
    // streaming regime — its ~18k filter-batch arrays exceed the
    // 4480-array cache, so bands time-share and re-pin per run).
    dnn::Network net = dnn::inceptionV3();
    core::EngineOptions opts;
    opts.backend = BackendKind::Functional;
    opts.threads = 1;
    core::Engine engine(opts);
    auto model = engine.compile(net);

    ASSERT_TRUE(model.functional());
    unsigned convs = 0, streaming = 0;
    for (const auto &layer : model.compiledLayers()) {
        EXPECT_EQ(layer.backend, BackendKind::Functional);
        if (!layer.op.isConv())
            continue;
        ASSERT_TRUE(layer.funcConv.has_value()) << layer.op.name();
        ++convs;
        if (!layer.funcConv->resident())
            ++streaming;
        // The §IV-A transforms engage where the legacy one-array
        // mapping cannot: 2048-channel 1x1s pack, 5x5 windows split.
        const auto &fp = layer.funcPlan;
        const auto &co = layer.op.conv;
        if (co.r * co.s == 1 && co.c > 256) {
            EXPECT_GT(fp.packFactor, 1u) << co.name;
        }
        if (co.r * co.s > 9) {
            EXPECT_GT(fp.splitFactor, 1u) << co.name;
        }
    }
    EXPECT_EQ(convs, 95u); // 94 conv sub-layers + the FC head
    EXPECT_GT(streaming, 0u);

    // The compiled model still answers the analytic report from the
    // same compile (batch sweep stays pure arithmetic).
    auto rep = model.report(64);
    EXPECT_GT(rep.latencyPs, 0.0);
}

} // namespace
