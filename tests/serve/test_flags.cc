/** @file The shared --port/--deadline-ms/--max-inflight/--priority
 * flag block: registration, bounds, and the fold into ServerOptions. */

#include <gtest/gtest.h>

#include "common/argparse.hh"
#include "serve/flags.hh"
#include "serve/wire.hh"

namespace
{

using nc::common::ArgParser;
using nc::serve::ServeFlags;

TEST(ServeFlags, ParsesAndFoldsIntoServerOptions)
{
    ServeFlags flags;
    ArgParser p("prog", "test");
    flags.registerWith(p);

    std::string err;
    const char *argv[] = {"prog",          "--port=8080",
                          "--deadline-ms", "10",
                          "--max-inflight", "32",
                          "--priority",    "7"};
    ASSERT_TRUE(p.tryParse(8, argv, err)) << err;
    EXPECT_EQ(flags.port, 8080u);
    EXPECT_EQ(flags.deadlineMs, 10u);
    EXPECT_EQ(flags.maxInflight, 32u);
    EXPECT_EQ(flags.priority, 7u);

    auto opts = flags.serverOptions();
    EXPECT_EQ(opts.port, 8080u);
    EXPECT_EQ(opts.batcher.deadlineMs, 10u);
    EXPECT_EQ(opts.batcher.maxInflight, 32u);
}

TEST(ServeFlags, DefaultsMatchTheBatcherDefaults)
{
    ServeFlags flags;
    nc::serve::BatcherOptions defaults;
    EXPECT_EQ(flags.deadlineMs, defaults.deadlineMs);
    EXPECT_EQ(flags.maxInflight, defaults.maxInflight);
    EXPECT_EQ(flags.port, 0u) << "default is an ephemeral port";
    EXPECT_EQ(flags.priority, 0u) << "default is the bulk band";
}

TEST(ServeFlags, BoundsTrackTheWireProtocol)
{
    struct Case
    {
        const char *flag;
        const char *value;
        const char *range;
    };
    const Case bad[] = {
        {"--port", "65536", "[0, 65535]"},
        {"--deadline-ms", "0", "[1, 600000]"},
        {"--max-inflight", "0", "[1, 65536]"},
        {"--priority", "8", "[0, 7]"},
    };
    static_assert(nc::serve::wire::kMaxPriority == 7,
                  "priority bound drifted from the wire band");
    for (const auto &c : bad) {
        ServeFlags flags;
        ArgParser p("prog", "test");
        flags.registerWith(p);
        std::string err;
        const char *argv[] = {"prog", c.flag, c.value};
        EXPECT_FALSE(p.tryParse(3, argv, err)) << c.flag;
        EXPECT_NE(err.find(c.range), std::string::npos)
            << c.flag << ": " << err;
    }
}

} // namespace
