/**
 * @file
 * DynamicBatcher semantics: coalescing, deadline flushes, priority
 * ordering with deterministic tie-breaks, admission backpressure,
 * and drain-on-shutdown. pause()/resume() freeze the runner so the
 * tests compose queues without racing it.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "serve/batcher.hh"

#include "serve_test_net.hh"

namespace
{

using namespace nc;
using serve::DynamicBatcher;

/** Gathers completions (they arrive on the runner thread). */
struct Collector
{
    struct Entry
    {
        uint64_t tag;
        DynamicBatcher::Result result;
    };

    std::mutex m;
    std::condition_variable cv;
    std::vector<Entry> entries;

    DynamicBatcher::Completion tagged(uint64_t tag)
    {
        return [this, tag](DynamicBatcher::Result r) {
            std::lock_guard<std::mutex> lock(m);
            entries.push_back({tag, std::move(r)});
            cv.notify_all();
        };
    }

    /** Block until @p n completions arrived (fails the test on 30s). */
    std::vector<Entry> waitFor(size_t n)
    {
        std::unique_lock<std::mutex> lock(m);
        bool ok = cv.wait_for(lock, std::chrono::seconds(30),
                              [&] { return entries.size() >= n; });
        EXPECT_TRUE(ok) << "only " << entries.size() << " of " << n
                        << " completions arrived";
        return entries;
    }

    /** Copy (not reference): the vector may still grow. */
    Entry of(uint64_t tag)
    {
        std::lock_guard<std::mutex> lock(m);
        for (auto &e : entries)
            if (e.tag == tag)
                return e;
        ADD_FAILURE() << "no completion for tag " << tag;
        return {};
    }
};

class BatcherTest : public ::testing::Test
{
  protected:
    BatcherTest()
        : engine(serve_test::functionalOpts()),
          model(engine.compile(serve_test::tinyNet()))
    {
    }

    dnn::QTensor input(uint64_t i)
    {
        return serve_test::inputFor(model, 5, i);
    }

    core::Engine engine;
    core::CompiledModel model;
    Collector got;
};

TEST_F(BatcherTest, CoalescesAFullQuantumIntoOnePass)
{
    serve::BatcherOptions opts;
    opts.maxBatch = 4;
    opts.startPaused = true;
    DynamicBatcher batcher(model, opts);
    ASSERT_EQ(batcher.imagesPerPass(), 4u);

    for (uint64_t i = 0; i < 4; ++i)
        batcher.submit(input(i), 0, got.tagged(i));
    EXPECT_EQ(batcher.queued(), 4u);
    batcher.resume();

    auto entries = got.waitFor(4);
    for (auto &e : entries) {
        EXPECT_EQ(e.result.status, serve::wire::Status::Ok);
        EXPECT_EQ(e.result.passIndex, 0u) << "split across passes";
        EXPECT_EQ(e.result.batchSize, 4u);
        EXPECT_GE(e.result.latencyMs, e.result.queueMs);
    }
    auto stats = batcher.stats();
    EXPECT_EQ(stats.accepted, 4u);
    EXPECT_EQ(stats.served, 4u);
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_EQ(stats.deadlineFlushes, 0u) << "a full batch is not a "
                                            "deadline flush";
    ASSERT_EQ(stats.occupancyHist.size(), 5u);
    EXPECT_EQ(stats.occupancyHist[4], 1u);
    EXPECT_DOUBLE_EQ(stats.meanOccupancy(), 4.0);
}

TEST_F(BatcherTest, DeadlineFlushesAnUndersizedBatch)
{
    serve::BatcherOptions opts;
    opts.deadlineMs = 1;
    opts.maxBatch = 8; // far more slots than traffic
    DynamicBatcher batcher(model, opts);

    batcher.submit(input(0), 0, got.tagged(0));
    batcher.submit(input(1), 0, got.tagged(1));
    auto entries = got.waitFor(2);
    for (auto &e : entries)
        EXPECT_EQ(e.result.status, serve::wire::Status::Ok);

    auto stats = batcher.stats();
    EXPECT_EQ(stats.served, 2u);
    EXPECT_GE(stats.deadlineFlushes, 1u)
        << "an undersized batch only launches via the deadline";
    EXPECT_EQ(stats.passes, stats.deadlineFlushes);
}

TEST_F(BatcherTest, HigherPrioritiesFlushFirst)
{
    serve::BatcherOptions opts;
    opts.maxBatch = 2;
    opts.startPaused = true;
    DynamicBatcher batcher(model, opts);

    // Tags encode the priority band: submit low first so only the
    // sort (not arrival order) can put urgent work in pass 0.
    uint8_t prio[6] = {0, 0, 3, 3, 7, 7};
    for (uint64_t i = 0; i < 6; ++i)
        batcher.submit(input(i), prio[i], got.tagged(i));
    batcher.resume();
    got.waitFor(6);

    auto passOf = [&](uint64_t tag) { return got.of(tag).result.passIndex; };
    EXPECT_EQ(passOf(4), 0u);
    EXPECT_EQ(passOf(5), 0u);
    EXPECT_EQ(passOf(2), 1u);
    EXPECT_EQ(passOf(3), 1u);
    EXPECT_EQ(passOf(0), 2u);
    EXPECT_EQ(passOf(1), 2u);
}

TEST_F(BatcherTest, EqualPrioritiesKeepAdmissionOrder)
{
    // The deterministic tie-break: same priority, one-slot passes —
    // completion pass indices must follow submission order exactly,
    // so identical runs compose identical batches.
    serve::BatcherOptions opts;
    opts.maxBatch = 1;
    opts.startPaused = true;
    DynamicBatcher batcher(model, opts);

    for (uint64_t i = 0; i < 4; ++i)
        batcher.submit(input(i), 5, got.tagged(i));
    batcher.resume();
    got.waitFor(4);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(got.of(i).result.passIndex, i);
}

TEST_F(BatcherTest, BackpressureRejectsPastTheCapInline)
{
    serve::BatcherOptions opts;
    opts.maxInflight = 2;
    opts.startPaused = true;
    DynamicBatcher batcher(model, opts);

    batcher.submit(input(0), 0, got.tagged(0));
    batcher.submit(input(1), 0, got.tagged(1));
    // The cap is queued + executing; the third submit must complete
    // inline on this thread with the typed status, not block.
    batcher.submit(input(2), 0, got.tagged(2));
    {
        auto e = got.of(2);
        EXPECT_EQ(e.result.status, serve::wire::Status::Rejected);
        EXPECT_NE(e.result.message.find("backpressure"),
                  std::string::npos)
            << e.result.message;
    }
    batcher.resume();
    auto entries = got.waitFor(3);
    auto stats = batcher.stats();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.served, 2u);
    (void)entries;
}

TEST_F(BatcherTest, WrongShapeIsBadRequestNotACrash)
{
    DynamicBatcher batcher(model, {});
    dnn::QTensor wrong(model.inputChannels() + 1, model.inputHeight(),
                       model.inputWidth());
    batcher.submit(wrong, 0, got.tagged(0));
    auto e = got.of(0);
    EXPECT_EQ(e.result.status, serve::wire::Status::BadRequest);
    EXPECT_FALSE(e.result.message.empty());
    EXPECT_EQ(batcher.stats().badRequests, 1u);
}

TEST_F(BatcherTest, DrainServesEverythingThenRefuses)
{
    serve::BatcherOptions opts;
    opts.maxBatch = 2;
    opts.startPaused = true; // queue first, then drain must resume
    DynamicBatcher batcher(model, opts);

    for (uint64_t i = 0; i < 5; ++i)
        batcher.submit(input(i), 0, got.tagged(i));
    batcher.drain();

    // Everything admitted before the drain completed Ok — graceful
    // shutdown never abandons accepted work.
    auto entries = got.waitFor(5);
    for (auto &e : entries)
        EXPECT_EQ(e.result.status, serve::wire::Status::Ok);
    EXPECT_EQ(batcher.stats().served, 5u);
    EXPECT_EQ(batcher.queued(), 0u);

    batcher.submit(input(9), 0, got.tagged(9));
    EXPECT_EQ(got.of(9).result.status,
              serve::wire::Status::ShuttingDown);
    batcher.drain(); // idempotent
}

TEST_F(BatcherTest, ServedOutputsMatchDirectRuns)
{
    serve::BatcherOptions opts;
    opts.maxBatch = 3;
    opts.startPaused = true;
    DynamicBatcher batcher(model, opts);

    std::vector<dnn::QTensor> inputs;
    for (uint64_t i = 0; i < 3; ++i)
        inputs.push_back(input(i));
    for (uint64_t i = 0; i < 3; ++i)
        batcher.submit(inputs[i], 0, got.tagged(i));
    batcher.resume();
    got.waitFor(3);
    batcher.drain();

    // The model is idle now; direct runs give the ground truth.
    for (uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(got.of(i).result.output.data(),
                  model.run(inputs[i]).output.data())
            << "request " << i;
}

} // namespace
