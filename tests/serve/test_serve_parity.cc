/**
 * @file
 * End-to-end serving parity: whatever the batcher's dynamic batch
 * composition, every served output must be bit-identical to a direct
 * CompiledModel::runBatch of the same inputs — across randomized
 * network shapes, engine thread counts, concurrent client counts,
 * and both transports. Plus the determinism property the bench
 * numbers rely on: identical request sets compose identical batches.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/loadgen.hh"
#include "serve/server.hh"

#include "serve_test_net.hh"

namespace
{

using namespace nc;

struct Shape
{
    unsigned channels, hw, filters;
};

/** A few tiny-but-distinct topologies (kept fast; the parity proof
 * does not depend on size). */
const Shape kShapes[] = {
    {1, 6, 2},
    {3, 8, 4},
    {2, 10, 3},
};

TEST(ServeParity, ServedEqualsDirectAcrossShapesThreadsClients)
{
    uint64_t seed = 100;
    for (const auto &shape : kShapes) {
        for (unsigned threads : {1u, 3u}) {
            core::Engine engine(serve_test::functionalOpts(threads));
            auto model = engine.compile(serve_test::tinyNet(
                shape.channels, shape.hw, shape.filters));
            for (unsigned clients : {1u, 4u}) {
                serve::ServerOptions sopts;
                sopts.batcher.deadlineMs = 1;
                sopts.batcher.maxBatch = 4;
                serve::InferenceServer server(model, sopts);
                serve::LoadGenOptions lopts;
                lopts.requests = 12;
                lopts.clients = clients;
                lopts.seed = ++seed;
                auto stats =
                    serve::runLoadGen(model, server, lopts);
                server.shutdown();
                SCOPED_TRACE(testing::Message()
                             << "c" << shape.channels << " hw"
                             << shape.hw << " f" << shape.filters
                             << " threads " << threads << " clients "
                             << clients);
                EXPECT_EQ(stats.completed, 12u);
                EXPECT_EQ(stats.errors, 0u);
                EXPECT_EQ(stats.mismatched, 0u)
                    << "served outputs diverged from direct runBatch";
            }
        }
    }
}

TEST(ServeParity, PrioritySpreadStillBitIdentical)
{
    // Mixed priorities reorder batch compositions; outputs must not
    // notice. Drive the server by hand so each request carries its
    // own priority.
    core::Engine engine(serve_test::functionalOpts(2));
    auto model = engine.compile(serve_test::tinyNet());

    std::vector<dnn::QTensor> inputs;
    for (uint64_t i = 0; i < 8; ++i)
        inputs.push_back(serve_test::inputFor(model, 31, i));
    auto expected = model.runBatch(inputs).outputs;

    serve::ServerOptions sopts;
    sopts.batcher.maxBatch = 3;
    sopts.batcher.startPaused = true; // compose one deep queue
    serve::InferenceServer server(model, sopts);
    auto client = server.loopback();
    for (uint64_t i = 0; i < 8; ++i) {
        serve::wire::RequestFrame req;
        req.id = i + 1;
        req.priority = static_cast<uint8_t>(
            (i * 5) % (serve::wire::kMaxPriority + 1));
        req.input = inputs[i];
        client.send(req);
    }
    server.batcher().resume();
    for (int k = 0; k < 8; ++k) {
        auto rsp = client.receive();
        ASSERT_TRUE(rsp.has_value());
        ASSERT_EQ(rsp->status, serve::wire::Status::Ok);
        EXPECT_EQ(rsp->output.data(), expected[rsp->id - 1].data())
            << "id " << rsp->id;
    }
    server.shutdown();
}

TEST(ServeParity, IdenticalRunsComposeIdenticalBatches)
{
    // The deterministic tie-break property: the same request set in
    // the same order yields the same (passIndex, batchSize) per id,
    // run to run.
    core::Engine engine(serve_test::functionalOpts());
    auto model = engine.compile(serve_test::tinyNet());

    auto compose = [&] {
        serve::ServerOptions sopts;
        sopts.batcher.maxBatch = 3;
        sopts.batcher.startPaused = true;
        serve::InferenceServer server(model, sopts);
        auto client = server.loopback();
        for (uint64_t i = 0; i < 9; ++i) {
            serve::wire::RequestFrame req;
            req.id = i + 1;
            req.priority = static_cast<uint8_t>(i % 3);
            req.input = serve_test::inputFor(model, 77, i);
            client.send(req);
        }
        server.batcher().resume();
        std::vector<std::pair<uint64_t, unsigned>> byId(9);
        for (int k = 0; k < 9; ++k) {
            auto rsp = client.receive();
            EXPECT_TRUE(rsp.has_value());
            byId[rsp->id - 1] = {rsp->passIndex, rsp->batchSize};
        }
        server.shutdown();
        return byId;
    };
    EXPECT_EQ(compose(), compose())
        << "batch compositions are not reproducible";
}

TEST(ServeParity, SocketTransportPreservesParity)
{
    core::Engine engine(serve_test::functionalOpts(2));
    auto model = engine.compile(serve_test::tinyNet());
    serve::ServerOptions sopts;
    sopts.batcher.deadlineMs = 1;
    serve::InferenceServer server(model, sopts);
    std::string err;
    if (!server.start(&err))
        GTEST_SKIP() << "no TCP in this sandbox: " << err;

    serve::LoadGenOptions lopts;
    lopts.requests = 12;
    lopts.clients = 3;
    lopts.seed = 9;
    lopts.overSocket = true;
    auto stats = serve::runLoadGen(model, server, lopts);
    server.shutdown();
    EXPECT_EQ(stats.completed, 12u);
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.mismatched, 0u);
}

} // namespace
