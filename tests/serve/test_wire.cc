/** @file Wire protocol: round trips, malformations, frame splitting. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/random.hh"
#include "serve/wire.hh"

namespace
{

using namespace nc::serve;

/** The payload of an encoded frame (everything after the prefix). */
std::span<const uint8_t>
payloadOf(const std::vector<uint8_t> &frame)
{
    return {frame.data() + 4, frame.size() - 4};
}

nc::dnn::QTensor
someTensor(uint64_t seed = 3, unsigned c = 2, unsigned hw = 5)
{
    nc::Rng rng(seed);
    return nc::dnn::randomQTensor(rng, c, hw, hw);
}

TEST(Wire, RequestRoundTripPreservesEveryField)
{
    wire::RequestFrame req;
    req.id = 0x1122334455667788ull;
    req.priority = 5;
    req.input = someTensor();

    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);
    // u32 length prefix, little endian, counts the payload only.
    uint32_t prefix = bytes[0] | bytes[1] << 8 | bytes[2] << 16 |
                      static_cast<uint32_t>(bytes[3]) << 24;
    EXPECT_EQ(prefix, bytes.size() - 4);

    wire::RequestFrame back;
    std::string err;
    ASSERT_TRUE(wire::decodeRequest(payloadOf(bytes), back, err))
        << err;
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.priority, req.priority);
    EXPECT_EQ(back.input.channels(), req.input.channels());
    EXPECT_EQ(back.input.height(), req.input.height());
    EXPECT_EQ(back.input.width(), req.input.width());
    EXPECT_EQ(back.input.data(), req.input.data());
    EXPECT_EQ(back.input.params().minVal, req.input.params().minVal);
    EXPECT_EQ(back.input.params().maxVal, req.input.params().maxVal);
}

TEST(Wire, ResponseRoundTripPreservesReportSlice)
{
    wire::ResponseFrame rsp;
    rsp.id = 42;
    rsp.status = wire::Status::Ok;
    rsp.queueMs = 1.25;
    rsp.latencyMs = 17.5;
    rsp.passIndex = 9;
    rsp.batchSize = 6;
    rsp.output = someTensor(11);

    std::vector<uint8_t> bytes;
    wire::encodeResponse(rsp, bytes);
    wire::ResponseFrame back;
    std::string err;
    ASSERT_TRUE(wire::decodeResponse(payloadOf(bytes), back, err))
        << err;
    EXPECT_EQ(back.id, 42u);
    EXPECT_EQ(back.status, wire::Status::Ok);
    EXPECT_DOUBLE_EQ(back.queueMs, 1.25);
    EXPECT_DOUBLE_EQ(back.latencyMs, 17.5);
    EXPECT_EQ(back.passIndex, 9u);
    EXPECT_EQ(back.batchSize, 6u);
    EXPECT_TRUE(back.message.empty());
    EXPECT_EQ(back.output.data(), rsp.output.data());
}

TEST(Wire, NonOkResponseCarriesMessageAndNoTensor)
{
    wire::ResponseFrame rsp;
    rsp.id = 7;
    rsp.status = wire::Status::Rejected;
    rsp.message = "in-flight cap 4 reached — backpressure";

    std::vector<uint8_t> bytes;
    wire::encodeResponse(rsp, bytes);
    wire::ResponseFrame back;
    std::string err;
    ASSERT_TRUE(wire::decodeResponse(payloadOf(bytes), back, err))
        << err;
    EXPECT_EQ(back.status, wire::Status::Rejected);
    EXPECT_EQ(back.message, rsp.message);
    EXPECT_EQ(back.output.data().size(), 0u);
}

TEST(Wire, StatusNamesAreHuman)
{
    EXPECT_STREQ(wire::statusName(wire::Status::Ok), "ok");
    EXPECT_STREQ(wire::statusName(wire::Status::Rejected),
                 "rejected");
    EXPECT_STREQ(wire::statusName(wire::Status::BadRequest),
                 "bad-request");
    EXPECT_STREQ(wire::statusName(wire::Status::ShuttingDown),
                 "shutting-down");
}

TEST(Wire, RejectsForeignAndFutureHeaders)
{
    wire::RequestFrame req;
    req.id = 1;
    req.input = someTensor();
    std::vector<uint8_t> good;
    wire::encodeRequest(req, good);

    wire::RequestFrame out;
    std::string err;
    {
        auto bad = good;
        bad[4] ^= 0xff; // magic low byte
        EXPECT_FALSE(wire::decodeRequest(payloadOf(bad), out, err));
        EXPECT_NE(err.find("magic"), std::string::npos) << err;
    }
    {
        auto bad = good;
        bad[6] = wire::kVersion + 1;
        EXPECT_FALSE(wire::decodeRequest(payloadOf(bad), out, err));
        EXPECT_NE(err.find("version"), std::string::npos) << err;
    }
    {
        // A response frame handed to the request decoder.
        wire::ResponseFrame rsp;
        rsp.id = 1;
        std::vector<uint8_t> enc;
        wire::encodeResponse(rsp, enc);
        EXPECT_FALSE(wire::decodeRequest(payloadOf(enc), out, err));
        EXPECT_NE(err.find("kind"), std::string::npos) << err;
    }
}

TEST(Wire, RejectsTruncationAnywhere)
{
    wire::RequestFrame req;
    req.id = 1;
    req.input = someTensor();
    std::vector<uint8_t> good;
    wire::encodeRequest(req, good);

    // Chop the payload at several depths: header, id, tensor bytes.
    for (size_t keep : {size_t(2), size_t(6), good.size() - 4 - 1}) {
        wire::RequestFrame out;
        std::string err;
        std::span<const uint8_t> cut(good.data() + 4, keep);
        EXPECT_FALSE(wire::decodeRequest(cut, out, err)) << keep;
        EXPECT_FALSE(err.empty());
    }
}

TEST(Wire, RejectsPriorityOutOfBand)
{
    // The encoder refuses to produce such a frame (it asserts), so
    // forge one: encode in-band, then patch the priority byte, which
    // sits after prefix(4) + header(4) + id(8).
    wire::RequestFrame req;
    req.id = 1;
    req.priority = wire::kMaxPriority;
    req.input = someTensor();
    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);
    bytes[16] = wire::kMaxPriority + 1;

    wire::RequestFrame out;
    std::string err;
    EXPECT_FALSE(wire::decodeRequest(payloadOf(bytes), out, err));
    EXPECT_NE(err.find("priority"), std::string::npos) << err;
}

TEST(Wire, RejectsDegenerateTensorDims)
{
    // c=0 with h,w nonzero is neither a tensor nor the "no tensor"
    // marker (all dims zero) — it must be refused, not mis-sized.
    wire::RequestFrame req;
    req.id = 1;
    req.input = someTensor();
    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);
    // Tensor dims sit right after header(4) + id(8) + priority(1).
    size_t cOff = 4 + 4 + 8 + 1;
    for (unsigned b = 0; b < 4; ++b)
        bytes[cOff + b] = 0;

    wire::RequestFrame out;
    std::string err;
    EXPECT_FALSE(wire::decodeRequest(payloadOf(bytes), out, err));
    EXPECT_NE(err.find("degenerate"), std::string::npos) << err;
}

TEST(Wire, FrameReaderReassemblesByteByByte)
{
    wire::RequestFrame req;
    req.id = 77;
    req.input = someTensor();
    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);

    wire::FrameReader reader;
    for (uint8_t b : bytes) {
        EXPECT_FALSE(reader.next().has_value());
        reader.feed({&b, 1});
    }
    auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(reader.pending(), 0u);

    wire::RequestFrame back;
    std::string err;
    ASSERT_TRUE(wire::decodeRequest(*payload, back, err)) << err;
    EXPECT_EQ(back.id, 77u);
}

TEST(Wire, FrameReaderSplitsCoalescedFrames)
{
    std::vector<uint8_t> stream;
    for (uint64_t id : {1, 2, 3}) {
        wire::RequestFrame req;
        req.id = id;
        req.input = someTensor(id);
        wire::encodeRequest(req, stream);
    }
    wire::FrameReader reader;
    reader.feed(stream);
    for (uint64_t id : {1, 2, 3}) {
        auto payload = reader.next();
        ASSERT_TRUE(payload.has_value()) << id;
        wire::RequestFrame back;
        std::string err;
        ASSERT_TRUE(wire::decodeRequest(*payload, back, err)) << err;
        EXPECT_EQ(back.id, id);
    }
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error().empty());
}

TEST(Wire, OversizedPrefixPoisonsTheStream)
{
    wire::FrameReader reader;
    const uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
    reader.feed(huge);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_FALSE(reader.error().empty());

    // Poisoned means poisoned: later (valid) bytes change nothing.
    wire::RequestFrame req;
    req.id = 1;
    req.input = someTensor();
    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);
    reader.feed(bytes);
    EXPECT_FALSE(reader.next().has_value());
}

} // namespace
