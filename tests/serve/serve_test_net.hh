/**
 * @file
 * Shared fixture bits for the serving tests: a tiny two-layer CNN
 * (small enough that a functional runBatch pass is milliseconds, so
 * the batcher tests can afford many passes) and a deterministic
 * input generator.
 */

#ifndef NC_TESTS_SERVE_TEST_NET_HH
#define NC_TESTS_SERVE_TEST_NET_HH

#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"

namespace serve_test
{

/** conv 3x3 over a CxHxW input, then a 1x1 two-class head. */
inline nc::dnn::Network
tinyNet(unsigned c = 3, unsigned hw = 8, unsigned filters = 4)
{
    nc::dnn::Network net;
    net.name = "serve-tiny";
    net.stages.push_back(nc::dnn::singleOpStage(
        "c1", nc::dnn::conv("c1", hw, hw, c, 3, 3, filters)));
    net.stages.push_back(nc::dnn::singleOpStage(
        "head", nc::dnn::conv("head", hw, hw, filters, 1, 1, 2)));
    return net;
}

/** A functional engine for serving tests. */
inline nc::core::EngineOptions
functionalOpts(unsigned threads = 1)
{
    nc::core::EngineOptions opts;
    opts.backend = nc::core::BackendKind::Functional;
    opts.threads = threads;
    return opts;
}

/** Request i's input for @p model, deterministic from (seed, i). */
inline nc::dnn::QTensor
inputFor(const nc::core::CompiledModel &model, uint64_t seed,
         uint64_t i)
{
    nc::Rng rng(seed * 7919 + i + 1);
    return nc::dnn::randomQTensor(rng, model.inputChannels(),
                                  model.inputHeight(),
                                  model.inputWidth());
}

} // namespace serve_test

#endif // NC_TESTS_SERVE_TEST_NET_HH
