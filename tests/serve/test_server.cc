/**
 * @file
 * InferenceServer transports: the loopback path end to end (which
 * exercises the exact socket framing/decode code), protocol-error
 * handling, typed shutdown refusals, and a real TCP round trip
 * (skipped, not failed, where the sandbox forbids sockets).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/loadgen.hh"
#include "serve/server.hh"

#include "serve_test_net.hh"

namespace
{

using namespace nc;
using serve::InferenceServer;

class ServerTest : public ::testing::Test
{
  protected:
    ServerTest()
        : engine(serve_test::functionalOpts()),
          model(engine.compile(serve_test::tinyNet()))
    {
    }

    dnn::QTensor input(uint64_t i)
    {
        return serve_test::inputFor(model, 21, i);
    }

    serve::wire::RequestFrame request(uint64_t id)
    {
        serve::wire::RequestFrame req;
        req.id = id;
        req.input = input(id);
        return req;
    }

    core::Engine engine;
    core::CompiledModel model;
};

TEST_F(ServerTest, LoopbackServesAndMatchesDirectRuns)
{
    serve::ServerOptions opts;
    opts.batcher.deadlineMs = 1;
    InferenceServer server(model, opts);
    auto client = server.loopback();

    for (uint64_t id = 1; id <= 3; ++id)
        client.send(request(id));
    std::vector<serve::wire::ResponseFrame> responses;
    for (int i = 0; i < 3; ++i) {
        auto rsp = client.receive();
        ASSERT_TRUE(rsp.has_value()) << "response " << i << " missing";
        responses.push_back(std::move(*rsp));
    }
    server.shutdown();

    std::sort(responses.begin(), responses.end(),
              [](const auto &a, const auto &b) { return a.id < b.id; });
    for (uint64_t id = 1; id <= 3; ++id) {
        auto &rsp = responses[id - 1];
        EXPECT_EQ(rsp.id, id);
        EXPECT_EQ(rsp.status, serve::wire::Status::Ok);
        EXPECT_GE(rsp.latencyMs, rsp.queueMs);
        EXPECT_GE(rsp.batchSize, 1u);
        EXPECT_EQ(rsp.output.data(), model.run(input(id)).output.data())
            << "served output diverged for id " << id;
    }
    EXPECT_EQ(server.serverStats().framesIn, 3u);
    EXPECT_EQ(server.serverStats().protocolErrors, 0u);
}

TEST_F(ServerTest, EachLoopbackClientOwnsItsResponses)
{
    InferenceServer server(model, {});
    auto a = server.loopback();
    auto b = server.loopback();
    a.send(request(1));
    b.send(request(2));
    auto ra = a.receive();
    auto rb = b.receive();
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(ra->id, 1u) << "response crossed client streams";
    EXPECT_EQ(rb->id, 2u);
    server.shutdown();
}

TEST_F(ServerTest, MalformedFrameAnswersBadRequest)
{
    InferenceServer server(model, {});
    auto client = server.loopback();

    // A well-framed payload that is not a protocol frame.
    const uint8_t junk[] = {3, 0, 0, 0, 'x', 'y', 'z'};
    client.sendBytes(junk);
    auto rsp = client.receive();
    ASSERT_TRUE(rsp.has_value())
        << "a bad frame must be answered, not ignored";
    EXPECT_EQ(rsp->status, serve::wire::Status::BadRequest);
    EXPECT_EQ(rsp->id, 0u) << "no id could be parsed";
    EXPECT_FALSE(rsp->message.empty());
    EXPECT_EQ(server.serverStats().protocolErrors, 1u);

    // The session survives: a valid request still round-trips.
    client.send(request(5));
    auto ok = client.receive();
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->id, 5u);
    EXPECT_EQ(ok->status, serve::wire::Status::Ok);
    server.shutdown();
}

TEST_F(ServerTest, OutOfBandPriorityIsBadRequest)
{
    InferenceServer server(model, {});
    auto client = server.loopback();
    // The encoder asserts on out-of-band priorities, so forge the
    // frame: the priority byte sits after prefix(4) + header(4) +
    // id(8).
    std::vector<uint8_t> bytes;
    serve::wire::encodeRequest(request(1), bytes);
    bytes[16] = serve::wire::kMaxPriority + 1;
    client.sendBytes(bytes);
    auto rsp = client.receive();
    ASSERT_TRUE(rsp.has_value());
    EXPECT_EQ(rsp->status, serve::wire::Status::BadRequest);
    server.shutdown();
}

TEST_F(ServerTest, ShutdownAnswersShuttingDown)
{
    InferenceServer server(model, {});
    server.shutdown();
    auto client = server.loopback();
    client.send(request(1));
    auto rsp = client.receive();
    ASSERT_TRUE(rsp.has_value())
        << "late requests get a typed refusal, not silence";
    EXPECT_EQ(rsp->status, serve::wire::Status::ShuttingDown);
}

TEST_F(ServerTest, SocketRoundTripMatchesDirectRuns)
{
    serve::ServerOptions opts;
    opts.batcher.deadlineMs = 1;
    InferenceServer server(model, opts);
    std::string err;
    if (!server.start(&err))
        GTEST_SKIP() << "no TCP in this sandbox: " << err;
    ASSERT_NE(server.port(), 0u);

    auto client = serve::SocketClient::connectTo(server.port(), &err);
    ASSERT_TRUE(client.has_value()) << err;
    for (uint64_t id = 1; id <= 2; ++id) {
        client->send(request(id));
        auto rsp = client->receive();
        ASSERT_TRUE(rsp.has_value()) << client->streamError();
        EXPECT_EQ(rsp->id, id);
        EXPECT_EQ(rsp->status, serve::wire::Status::Ok);
        EXPECT_EQ(rsp->output.data(),
                  model.run(input(id)).output.data());
    }
    server.shutdown();
    EXPECT_EQ(server.serverStats().connectionsAccepted, 1u);
    EXPECT_EQ(server.serverStats().framesIn, 2u);
}

TEST_F(ServerTest, ConnectionCapRefusesTheOverflow)
{
    serve::ServerOptions opts;
    opts.maxConnections = 1;
    InferenceServer server(model, opts);
    std::string err;
    if (!server.start(&err))
        GTEST_SKIP() << "no TCP in this sandbox: " << err;

    auto first = serve::SocketClient::connectTo(server.port(), &err);
    ASSERT_TRUE(first.has_value()) << err;
    first->send(request(1));
    ASSERT_TRUE(first->receive().has_value());

    // The second connect succeeds at the TCP level (backlog) but the
    // server closes it instead of servicing it.
    auto second = serve::SocketClient::connectTo(server.port(), &err);
    ASSERT_TRUE(second.has_value()) << err;
    second->send(request(2));
    auto rsp = second->receive(5000);
    EXPECT_FALSE(rsp.has_value());
    server.shutdown();
    EXPECT_EQ(server.serverStats().connectionsRefused, 1u);
}

} // namespace
